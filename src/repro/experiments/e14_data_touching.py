"""E14 — Impact of data-touching operations on affinity benefits.

The paper: "These graphs [Figs. 10/11] can be interpreted to illustrate
the impact [of] data-touching operations on the benefits of affinity-based
scheduling.  For example, checksumming on our platform can be performed at
a rate of 32 bytes/µs.  Consider the worst case ... largest possible FDDI
packets, each with 4432 bytes of data.  The fixed overhead would be 139 µs
per packet."

This experiment makes that interpretation explicit: sweep the per-packet
payload (0 .. 4432 bytes) with data-touching enabled, and report how the
affinity-scheduling delay reduction dilutes as the fixed, cache-
independent checksumming time grows.

Status: numbers and interpretation quoted; the sweep grid is the
reproduction's.
"""

from __future__ import annotations

from typing import Dict

from ..analysis.tables import format_table
from ..core.params import FDDI_MAX_PAYLOAD_BYTES, PAPER_COSTS
from ..runner import get_runner
from ..sim.system import SystemConfig
from ..workloads.traffic import FixedSize, TrafficSpec
from .base import ExperimentResult

EXPERIMENT_ID = "e14"
TITLE = "Data-touching (checksumming) dilutes the affinity benefit"

N_STREAMS = 8
RATE_PPS = 12_000.0
BASELINE = ("locking", "fcfs")
AFFINITY = ("locking", "stream-mru")


def run(fast: bool = True, seed: int = 1, **_) -> ExperimentResult:
    duration_us = 400_000 if fast else 2_000_000
    warmup_us = 60_000 if fast else 300_000
    payloads = (0, 1024, 4432) if fast else (0, 256, 1024, 2048, 4432)

    configs = []
    for payload in payloads:
        overhead = PAPER_COSTS.data_touching_us(payload)
        # Keep offered utilization comparable as service time grows.
        rate = RATE_PPS * PAPER_COSTS.t_cold_us / (PAPER_COSTS.t_cold_us + overhead)
        traffic = TrafficSpec.homogeneous_poisson(
            N_STREAMS, rate, size_model=FixedSize(payload)
        )
        for paradigm, policy in (BASELINE, AFFINITY):
            configs.append(SystemConfig(
                traffic=traffic, paradigm=paradigm, policy=policy,
                data_touching=True,
                duration_us=duration_us, warmup_us=warmup_us, seed=seed,
            ))
    summaries = iter(get_runner().run_many(configs))

    rows = []
    for payload in payloads:
        overhead = PAPER_COSTS.data_touching_us(payload)
        results: Dict[str, float] = {
            "baseline": next(summaries).mean_delay_us,
            "affinity": next(summaries).mean_delay_us,
        }
        reduction = 1.0 - results["affinity"] / results["baseline"]
        rows.append({
            "payload_bytes": payload,
            "checksum_us": round(overhead, 1),
            "baseline_delay_us": round(results["baseline"], 1),
            "affinity_delay_us": round(results["affinity"], 1),
            "reduction_pct": round(reduction * 100.0, 1),
        })

    text = format_table(
        rows,
        title=(
            f"Affinity benefit vs payload size (checksumming at "
            f"{PAPER_COSTS.checksum_bytes_per_us:.0f} B/µs; max FDDI payload "
            f"{FDDI_MAX_PAYLOAD_BYTES} B -> "
            f"{PAPER_COSTS.data_touching_us(FDDI_MAX_PAYLOAD_BYTES):.0f} µs)"
        ),
    )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        rows=rows,
        text=text,
        notes=(
            "The fixed data-touching time inflates both policies' delays "
            "equally, so the *relative* affinity reduction shrinks as "
            "payloads grow — the paper's reinterpretation of Figs. 10/11."
        ),
        meta={"payloads": payloads},
    )
