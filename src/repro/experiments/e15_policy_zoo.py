"""E15 — Modern scheduling-policy zoo: delay, capacity, and reordering.

The paper's policies predate two mechanisms that dominate modern parallel
network processing: NIC-level hash steering (Flow Director / RSS) and
work stealing.  This experiment re-runs the paper's delay and capacity
grids (the E06-E14 methodology) over the modernized locking-policy zoo —
``flow-steer``, ``work-steal`` and ``grouped`` alongside the paper's
``mru`` and ``wired-streams`` — and adds the metric the paper never
needed: **intra-stream packet reordering**.  Affinity in the 1995 design
is reorder-free by construction (a stream's packets serialize through
one protocol stack); steering and stealing trade that guarantee for
load balance, and the reordering table quantifies the price (cf. Wu,
Wolf & Franklin on Flow Director out-of-order pathologies).

Three falsifiable expectations encoded in the notes/meta:

1. ``wired-streams`` (and ``grouped`` with as many groups as
   processors) never reorders and never migrates;
2. ``flow-steer`` with an aggressive rebalance threshold reorders —
   nonzero ``out_of_order`` at high load — because re-steering moves
   queued streams between processors;
3. every policy is reorder-free on a single processor.

Status: extension experiment (not a paper artifact); methodology reuses
the E08/E09 grids so the zoo curves are directly comparable.
"""

from __future__ import annotations

from typing import Dict

from ..analysis.tables import format_series, format_table
from ..core.params import PlatformConfig
from ..runner import get_runner
from ..sim.system import SystemConfig
from ..workloads.traffic import TrafficSpec
from .base import ExperimentResult, PolicySpec, delay_vs_rate_sweep, find_capacity

EXPERIMENT_ID = "e15"
TITLE = "Policy zoo: delay, capacity, and reordering for modern schedulers"

#: Headline delay/capacity policies: the paper's best two plus the zoo.
POLICIES: Dict[str, PolicySpec] = {
    "locking-mru": ("locking", "mru"),
    "locking-wired": ("locking", "wired-streams"),
    "flow-steer": ("locking", "flow-steer"),
    "work-steal": ("locking", "work-steal"),
    "grouped": ("locking", "grouped"),
}

#: Reordering detail covers the full registry (exact registry names).
REORDERING_POLICIES: Dict[str, PolicySpec] = {
    "fcfs": ("locking", "fcfs"),
    "mru": ("locking", "mru"),
    "stream-mru": ("locking", "stream-mru"),
    "pools": ("locking", "pools"),
    "wired-streams": ("locking", "wired-streams"),
    "hybrid": ("locking", "hybrid"),
    "flow-steer": ("locking", "flow-steer"),
    "work-steal": ("locking", "work-steal"),
    "grouped": ("locking", "grouped"),
    "ips-wired": ("ips", "ips-wired"),
    "ips-mru": ("ips", "ips-mru"),
}

N_STREAMS = 16


def run(fast: bool = True, seed: int = 1, **_) -> ExperimentResult:
    base = SystemConfig(
        traffic=TrafficSpec.homogeneous_poisson(N_STREAMS, 1000.0),
        duration_us=300_000 if fast else 1_500_000,
        warmup_us=50_000 if fast else 250_000,
        seed=seed,
    )
    if fast:
        rate_grid = (2_000, 10_000, 22_000, 34_000, 42_000)
    else:
        rate_grid = (1_000, 2_000, 4_000, 8_000, 12_000, 16_000, 22_000,
                     28_000, 34_000, 38_000, 42_000, 46_000)
    rows, series = delay_vs_rate_sweep(base, POLICIES, rate_grid, N_STREAMS)

    # --- capacity (E09 methodology) for the zoo vs the paper's best.
    cap_rows = []
    capacities: Dict[str, float] = {}
    for label in ("locking-wired", "flow-steer", "work-steal", "grouped"):
        paradigm, policy = POLICIES[label]

        def make(rate: float, paradigm=paradigm, policy=policy) -> SystemConfig:
            return base.with_(
                traffic=TrafficSpec.homogeneous_poisson(N_STREAMS, rate),
                paradigm=paradigm, policy=policy,
            )

        cap = find_capacity(make, low_pps=5_000, high_pps=80_000,
                            iterations=4 if fast else 10)
        capacities[label] = cap
        cap_rows.append({"policy": label, "capacity_pps": round(cap)})

    # --- reordering detail at a mid-range load, full registry.
    mid_rate = 30_000
    traffic = TrafficSpec.homogeneous_poisson(N_STREAMS, mid_rate)
    reorder_configs = [
        base.with_(traffic=traffic, paradigm=paradigm, policy=policy)
        for paradigm, policy in REORDERING_POLICIES.values()
    ]
    # Control: flow-steer on one processor must be reorder-free.
    reorder_configs.append(base.with_(
        traffic=traffic, paradigm="locking", policy="flow-steer",
        platform=PlatformConfig(n_processors=1),
    ))
    summaries = get_runner().run_many(reorder_configs, label="reordering")
    reorder_rows = []
    labels = list(REORDERING_POLICIES) + ["flow-steer"]
    n_procs = [base.platform.n_processors] * len(REORDERING_POLICIES) + [1]
    for label, procs, s in zip(labels, n_procs, summaries):
        row: Dict[str, object] = {"policy": label, "n_processors": procs}
        row.update(s.reordering_row())
        reorder_rows.append(row)

    text = format_series(
        [r["rate_pps"] for r in rows], series, x_label="rate_pps",
        title="Mean packet delay (µs); inf = saturated", precision=1,
    )
    from ..analysis.plot import ascii_plot
    text += "\n\n" + ascii_plot(
        [r["rate_pps"] for r in rows], series, x_label="rate_pps",
        y_label="mean delay (us)", title="Policy zoo delay curves",
    )
    text += "\n\n" + format_table(
        cap_rows, title=f"Maximum sustainable aggregate rate ({N_STREAMS} streams)"
    )
    text += "\n\n" + format_table(
        reorder_rows,
        title=f"Intra-stream reordering at {mid_rate} pps (full registry)",
    )

    by_label = {(r["policy"], r["n_processors"]): r for r in reorder_rows}
    wired_row = by_label[("wired-streams", base.platform.n_processors)]
    steer_row = by_label[("flow-steer", base.platform.n_processors)]
    uni_row = by_label[("flow-steer", 1)]
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        rows=rows + cap_rows + reorder_rows,
        text=text,
        notes=(
            "Affinity by wiring is reorder-free "
            f"(wired out_of_order={wired_row['out_of_order']}); hash "
            "steering buys load balance with reordering (flow-steer "
            f"out_of_order={steer_row['out_of_order']}); one processor "
            f"cannot reorder (flow-steer@1proc={uni_row['out_of_order']})."
        ),
        meta={
            "capacities": capacities,
            "mid_rate_pps": mid_rate,
            "wired_reorder_free": wired_row["out_of_order"] == 0
            and wired_row["migrations"] == 0,
            "flow_steer_reorders": steer_row["out_of_order"] > 0,
            "uniprocessor_reorder_free": uni_row["out_of_order"] == 0,
        },
    )
