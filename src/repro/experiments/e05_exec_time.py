"""E05 — Packet execution time t(x) vs intervening non-protocol time.

The analytic model's central curve: execution time interpolating from
``t_warm`` toward ``t_cold`` as intervening non-protocol activity of
duration ``x`` displaces the footprint from L1 (fast) and L2 (slow).

Status: functional form quoted ("the impact of the non-protocol workload
is captured by scaling these bounds by the fraction of the protocol
footprint found at each corresponding layer"); the plotted grid is
reconstructed.
"""

from __future__ import annotations

import numpy as np

from ..analysis.tables import format_series
from ..cache.hierarchy import sgi_challenge_hierarchy
from ..core.exec_model import ExecutionTimeModel
from ..core.params import PAPER_COMPOSITION, PAPER_COSTS
from .base import ExperimentResult

EXPERIMENT_ID = "e05"
TITLE = "Packet execution time t(x) after intervening non-protocol activity"

INTENSITIES = (0.25, 0.5, 1.0)


def run(fast: bool = True, seed: int = 1, **_) -> ExperimentResult:
    model = ExecutionTimeModel(
        PAPER_COSTS, PAPER_COMPOSITION, sgi_challenge_hierarchy()
    )
    n_points = 10 if fast else 30
    x_us = np.logspace(1, 7, n_points)  # 10 µs .. 10 s
    series = {}
    for V in INTENSITIES:
        series[f"t(x), V={V}"] = [
            float(model.execution_time_after_idle(x, intensity=V)) for x in x_us
        ]
    rows = []
    for i, x in enumerate(x_us):
        row = {"intervening_us": float(x)}
        for k, v in series.items():
            row[k] = v[i]
        rows.append(row)
    text = format_series(
        [float(x) for x in x_us], series, x_label="intervening_us",
        title=(
            f"t_warm={PAPER_COSTS.t_warm_us} t_l2={PAPER_COSTS.t_l2_us} "
            f"t_cold={PAPER_COSTS.t_cold_us} (µs)"
        ),
        precision=1,
    )
    from ..analysis.plot import ascii_plot
    text += "\n\n" + ascii_plot(
        [float(x) for x in x_us], series, x_label="intervening_us",
        y_label="t(x) us", logx=True, title="Reload-transient shape",
    )

    # Model-vs-measurement validation (the paper validates the analytic
    # form against implementation measurements before simulating with it).
    from ..analysis.tables import format_table
    from ..measurement.model_validation import validate_exec_model
    validation = validate_exec_model(seed=seed)
    text += "\n\n" + format_table(
        [
            {
                "intervening_refs": p.intervening_refs,
                "measured_us": round(p.measured_us, 1),
                "analytic_us": round(p.analytic_us, 1),
                "rel_err": round(p.relative_error, 3),
            }
            for p in validation.points
        ],
        title="Analytic t(x) vs exact trace-driven measurement",
    )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        rows=rows,
        text=text,
        notes=(
            "t(0)=t_warm; t(x) -> t_cold as x grows; the knee near ~1 ms is "
            "L1 displacement, the slow tail beyond ~100 ms is L2."
        ),
        meta={"model": model.describe(), "validation": validation},
    )
