"""E03 — Flush-fraction curves F1(x), F2(x) (paper Fig. "F(x) computed for
the 100-MHz clock rate of MIPS R4400, assuming an average of 5 clock
cycles per memory reference").

The headline qualitative observation to reproduce: "the protocol footprint
is flushed much more slowly from L2 than from L1, reflecting its much
larger size".

Status: construction quoted (Appendix A); exact plotted x-range
reconstructed (log-spaced from 10 µs to 10 s).
"""

from __future__ import annotations

import numpy as np

from ..analysis.tables import format_kv, format_series
from ..cache.hierarchy import sgi_challenge_hierarchy
from .base import ExperimentResult

EXPERIMENT_ID = "e03"
TITLE = "Footprint flush fractions F1(x), F2(x) on the R4400/Challenge"


def run(fast: bool = True, seed: int = 1, intensity: float = 1.0,
        **_) -> ExperimentResult:
    hierarchy = sgi_challenge_hierarchy()
    n_points = 10 if fast else 25
    x_us = np.logspace(1, 7, n_points)  # 10 µs .. 10 s
    F = hierarchy.flush_fractions(x_us, intensity=intensity)
    series = {
        "F1 (16KB L1, 32B lines)": [float(v) for v in F[0]],
        "F2 (1MB L2, 128B lines)": [float(v) for v in F[1]],
    }
    rows = [
        {"intervening_us": float(x), "F1": float(F[0][i]), "F2": float(F[1][i])}
        for i, x in enumerate(x_us)
    ]
    half_life = {
        "x where F1 = 0.5 (us)": round(hierarchy.time_to_flush(0, 0.5, intensity), 1),
        "x where F2 = 0.5 (us)": round(hierarchy.time_to_flush(1, 0.5, intensity), 1),
    }
    ratio = half_life["x where F2 = 0.5 (us)"] / half_life["x where F1 = 0.5 (us)"]
    text = format_series(
        [float(x) for x in x_us], series, x_label="intervening_us",
        title=f"Flush fractions (non-protocol intensity V={intensity})",
        precision=3,
    )
    text += "\n\n" + format_kv({**half_life, "L2/L1 half-flush ratio": round(ratio, 1)})
    from ..analysis.plot import ascii_plot
    text += "\n\n" + ascii_plot(
        [float(x) for x in x_us], series, x_label="intervening_us",
        y_label="flushed fraction", logx=True, title="Flush-curve shape",
    )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        rows=rows,
        text=text,
        notes=(
            "Reproduces: 'the protocol footprint is flushed much more "
            "slowly from L2 than from L1'."
        ),
        meta={"half_life": half_life, "l2_over_l1_ratio": ratio},
    )
