"""Ablation studies for the reproduction's reconstructed parameters.

DESIGN.md §4 lists the modelling decisions the capture forced us to
reconstruct.  Each ablation below sweeps one of them and reports how the
paper's qualitative conclusions respond — demonstrating which findings
are robust to the reconstruction and which are parameter-sensitive:

``A01`` lock costs (DESIGN §4.5 / EXPERIMENTS deviation 2): the IPS
    latency margin over Locking grows monotonically with the per-packet
    locking cost; the published "much lower latency" corresponds to the
    upper end of the [3,13]-derived range.
``A02`` shared-writable fraction (DESIGN §4.4): Locking's cross-processor
    invalidation penalty scales with it; IPS is untouched (its defining
    structural advantage).
``A03`` footprint composition: shifting weight from shared code to
    per-stream state strengthens stream-affinity policies
    (Wired-Streams/stream-MRU) relative to plain MRU.
``A04`` cache geometry: a larger L2 stretches the F2 timescale and
    deepens the warm/cold gap recovery; a unified (non-split) L1 doubles
    effective displacement.
``A05`` lock granularity (ref [3]): splitting the shared stack's critical
    work across per-layer locks pipelines packets through the stack,
    raising Locking's serialization ceiling — at the price of more lock
    acquisitions per packet (modelled as extra uncontended overhead).

All five run from the CLI (``python -m repro run a01``) and have benches.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List

from ..analysis.tables import format_table
from ..cache.hierarchy import CHALLENGE_L2, R4400_L1D, CacheHierarchy
from ..core.params import (
    PAPER_COMPOSITION,
    PAPER_COSTS,
    FootprintComposition,
    PlatformConfig,
)
from ..sim.system import SystemConfig, run_simulation
from ..workloads.traffic import TrafficSpec
from .base import ExperimentResult

__all__ = ["run_a01", "run_a02", "run_a03", "run_a04", "run_a05"]


def _base(fast: bool, seed: int, rate: float = 16_000.0,
          n_streams: int = 8) -> SystemConfig:
    return SystemConfig(
        traffic=TrafficSpec.homogeneous_poisson(n_streams, rate),
        duration_us=300_000 if fast else 1_500_000,
        warmup_us=50_000 if fast else 250_000,
        seed=seed,
    )


# ----------------------------------------------------------------------
# A01: lock cost sweep
# ----------------------------------------------------------------------
def run_a01(fast: bool = True, seed: int = 1, **_) -> ExperimentResult:
    """IPS's latency margin vs per-packet locking cost."""
    rows: List[Dict] = []
    for overhead in (5.0, 10.0, 20.0, 40.0):
        costs = replace(PAPER_COSTS, lock_overhead_us=overhead)
        base = _base(fast, seed).with_(costs=costs)
        locking = run_simulation(base.with_(policy="mru"))
        ips = run_simulation(base.with_(paradigm="ips", policy="ips-wired"))
        rows.append({
            "lock_overhead_us": overhead,
            "locking_mru_delay_us": round(locking.mean_delay_us, 1),
            "ips_wired_delay_us": round(ips.mean_delay_us, 1),
            "ips_margin_us": round(
                locking.mean_delay_us - ips.mean_delay_us, 1
            ),
        })
    margins = [r["ips_margin_us"] for r in rows]
    return ExperimentResult(
        experiment_id="a01",
        title="Ablation: per-packet locking cost vs IPS latency margin",
        rows=rows,
        text=format_table(rows, title="16 kpps, 8 streams"),
        notes=(
            "IPS's margin grows monotonically with locking cost; the "
            "paper's strong IPS latency win corresponds to the upper end "
            "of the [3,13]-reported per-packet lock costs."
        ),
        meta={"margins": margins},
    )


# ----------------------------------------------------------------------
# A02: shared-writable fraction sweep
# ----------------------------------------------------------------------
def run_a02(fast: bool = True, seed: int = 1, **_) -> ExperimentResult:
    """Cross-processor invalidation penalty vs shared-writable fraction."""
    rows: List[Dict] = []
    for frac in (0.0, 0.15, 0.3, 0.6):
        comp = replace(PAPER_COMPOSITION, shared_writable_of_code=frac)
        base = _base(fast, seed).with_(composition=comp)
        locking = run_simulation(base.with_(policy="wired-streams"))
        ips = run_simulation(base.with_(paradigm="ips", policy="ips-wired"))
        rows.append({
            "shared_writable_frac": frac,
            "locking_wired_exec_us": round(locking.mean_exec_us, 1),
            "ips_wired_exec_us": round(ips.mean_exec_us, 1),
        })
    locking_execs = [r["locking_wired_exec_us"] for r in rows]
    ips_execs = [r["ips_wired_exec_us"] for r in rows]
    return ExperimentResult(
        experiment_id="a02",
        title="Ablation: shared-writable state fraction (Locking's penalty)",
        rows=rows,
        text=format_table(rows, title="16 kpps, 8 streams, wired policies"),
        notes=(
            "Locking's service time climbs with the migrating shared "
            "fraction; IPS is structurally immune (private stack state)."
        ),
        meta={"locking_execs": locking_execs, "ips_execs": ips_execs},
    )


# ----------------------------------------------------------------------
# A03: footprint composition sweep
# ----------------------------------------------------------------------
def run_a03(fast: bool = True, seed: int = 1, **_) -> ExperimentResult:
    """Stream-affinity policies vs stream-state weight."""
    compositions = {
        "code-heavy": FootprintComposition(code_global=0.7, stream_state=0.15,
                                           thread_stack=0.15),
        "paper-default": PAPER_COMPOSITION,
        "stream-heavy": FootprintComposition(code_global=0.25,
                                             stream_state=0.60,
                                             thread_stack=0.15),
    }
    rows: List[Dict] = []
    for label, comp in compositions.items():
        base = _base(fast, seed, rate=24_000.0).with_(composition=comp)
        mru = run_simulation(base.with_(policy="mru"))
        wired = run_simulation(base.with_(policy="wired-streams"))
        rows.append({
            "composition": label,
            "stream_weight": comp.stream_state,
            "mru_exec_us": round(mru.mean_exec_us, 1),
            "wired_exec_us": round(wired.mean_exec_us, 1),
            "wired_advantage_us": round(
                mru.mean_exec_us - wired.mean_exec_us, 1
            ),
        })
    advantages = [r["wired_advantage_us"] for r in rows]
    return ExperimentResult(
        experiment_id="a03",
        title="Ablation: footprint composition vs stream-affinity payoff",
        rows=rows,
        text=format_table(rows, title="24 kpps, 8 streams"),
        notes=(
            "The heavier the per-stream state in the footprint, the larger "
            "Wired-Streams' service-time advantage over plain MRU — the "
            "knob behind the Fig. 6/7 crossover position."
        ),
        meta={"advantages": advantages},
    )


# ----------------------------------------------------------------------
# A04: cache geometry sweep
# ----------------------------------------------------------------------
def run_a04(fast: bool = True, seed: int = 1, **_) -> ExperimentResult:
    """Flush timescales and delays under alternative cache geometries."""
    geometries = {
        "paper (16K split L1, 1M L2)": CacheHierarchy(
            levels=(R4400_L1D, CHALLENGE_L2)
        ),
        "unified L1": CacheHierarchy(
            levels=(replace(R4400_L1D, split_fraction=1.0), CHALLENGE_L2)
        ),
        "4M L2": CacheHierarchy(
            levels=(R4400_L1D, replace(CHALLENGE_L2, size_bytes=4 << 20))
        ),
        "256K L2": CacheHierarchy(
            levels=(R4400_L1D, replace(CHALLENGE_L2, size_bytes=256 << 10))
        ),
    }
    rows: List[Dict] = []
    for label, hierarchy in geometries.items():
        platform = PlatformConfig(hierarchy=hierarchy)
        base = _base(fast, seed).with_(platform=platform)
        mru = run_simulation(base.with_(policy="mru"))
        rows.append({
            "geometry": label,
            "l1_half_flush_us": round(hierarchy.time_to_flush(0, 0.5), 0),
            "l2_half_flush_us": round(hierarchy.time_to_flush(1, 0.5), 0),
            "mru_delay_us": round(mru.mean_delay_us, 1),
        })
    return ExperimentResult(
        experiment_id="a04",
        title="Ablation: cache geometry vs flush timescales and delay",
        rows=rows,
        text=format_table(rows, title="16 kpps, 8 streams, Locking-MRU"),
        notes=(
            "A split L1 halves effective displacement (slower flushing); "
            "L2 capacity sets how long cold-start penalties persist — the "
            "larger the L2, the longer affinity survives idle periods."
        ),
        meta={"geometries": list(geometries)},
    )


# ----------------------------------------------------------------------
# A05: lock granularity sweep (ref [3])
# ----------------------------------------------------------------------
def run_a05(fast: bool = True, seed: int = 1, **_) -> ExperimentResult:
    """Locking behaviour vs lock granularity (coarse stack lock vs
    per-layer locks)."""
    rows: List[Dict] = []
    rate = 40_000.0
    for granularity in (1, 2, 3):
        # Finer locks mean more acquire/release pairs per packet: charge
        # a proportional uncontended overhead.
        costs = replace(PAPER_COSTS,
                        lock_overhead_us=PAPER_COSTS.lock_overhead_us
                        * (1.0 + 0.3 * (granularity - 1)))
        base = _base(fast, seed, rate=rate).with_(
            costs=costs, lock_granularity=granularity,
            policy="wired-streams",
        )
        s = run_simulation(base)
        rows.append({
            "n_locks": granularity,
            "mean_delay_us": round(s.mean_delay_us, 1),
            "mean_lock_wait_us": round(s.mean_lock_wait_us, 2),
            "mean_exec_us": round(s.mean_exec_us, 1),
        })
    waits_us = [r["mean_lock_wait_us"] for r in rows]
    return ExperimentResult(
        experiment_id="a05",
        title="Ablation: lock granularity under Locking (ref [3])",
        rows=rows,
        text=format_table(rows, title=f"{rate:.0f} pps, wired-streams"),
        notes=(
            "Per-layer locks pipeline packets through the stack's critical "
            "sections (waits shrink) but add per-packet locking overhead; "
            "IPS sidesteps the trade-off entirely."
        ),
        meta={"lock_waits": waits_us},
    )
