"""E09 — Maximum throughput capacity: Locking vs IPS.

Quantifies the abstract's claims that affinity scheduling "enabl[es] the
host to support a greater number of concurrent streams and to provide
higher maximum throughput to individual streams", and that IPS delivers
"significantly higher message throughput capacity".

For each paradigm/policy the maximum sustainable aggregate rate is found
by bisection on simulation stability.

Status: reconstructed from the abstract (the capture does not quote the
capacity figure's form).
"""

from __future__ import annotations

from typing import Dict

from ..analysis.tables import format_table
from ..sim.system import SystemConfig
from ..workloads.traffic import TrafficSpec
from .base import ExperimentResult, PolicySpec, find_capacity

EXPERIMENT_ID = "e09"
TITLE = "Maximum sustainable throughput by paradigm and policy"

POLICIES: Dict[str, PolicySpec] = {
    "locking-fcfs(baseline)": ("locking", "fcfs"),
    "locking-mru": ("locking", "mru"),
    "locking-wired-streams": ("locking", "wired-streams"),
    "ips-wired": ("ips", "ips-wired"),
}

N_STREAMS = 16


def run(fast: bool = True, seed: int = 1, **_) -> ExperimentResult:
    duration_us = 300_000 if fast else 1_500_000
    warmup_us = 50_000 if fast else 250_000
    iterations = 6 if fast else 10

    rows = []
    capacities = {}
    for label, (paradigm, policy) in POLICIES.items():
        def make(rate: float, paradigm=paradigm, policy=policy) -> SystemConfig:
            return SystemConfig(
                traffic=TrafficSpec.homogeneous_poisson(N_STREAMS, rate),
                paradigm=paradigm,
                policy=policy,
                duration_us=duration_us,
                warmup_us=warmup_us,
                seed=seed,
            )
        cap = find_capacity(make, low_pps=5_000, high_pps=80_000,
                            iterations=iterations)
        capacities[label] = cap
        rows.append({"policy": label, "capacity_pps": round(cap)})

    baseline = capacities["locking-fcfs(baseline)"]
    for row in rows:
        row["vs_baseline"] = round(row["capacity_pps"] / baseline, 2)

    text = format_table(
        rows, title=f"Maximum sustainable aggregate rate ({N_STREAMS} streams)"
    )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        rows=rows,
        text=text,
        notes=(
            "Expected ordering: baseline < MRU < wired-streams < IPS-wired "
            "(affinity raises capacity; IPS additionally sheds locking costs)."
        ),
        meta={"capacities": capacities},
    )
