"""E02 — The footprint function u(R; L) (paper eq. 2).

Tabulates the Singh-Stone-Thiebaut footprint function with the published
MVS constants over the reference-count range the simulation visits, for
the platform's three line sizes (16 B shown for comparison, 32 B = R4400
L1, 128 B = Challenge L2).

Status: equation and constants quoted verbatim by the paper; the table
itself is the reproduction's rendering of it.
"""

from __future__ import annotations

import numpy as np

from ..analysis.tables import format_series
from ..cache.footprint import MVS_WORKLOAD
from .base import ExperimentResult

EXPERIMENT_ID = "e02"
TITLE = "Footprint function u(R; L), MVS constants (eq. 2)"

LINE_SIZES = (16, 32, 128)


def run(fast: bool = True, seed: int = 1, **_) -> ExperimentResult:
    n_points = 8 if fast else 16
    R = np.logspace(2, 8, n_points)
    series = {}
    for L in LINE_SIZES:
        series[f"u(R; L={L})"] = [
            float(MVS_WORKLOAD.unique_lines(r, L)) for r in R
        ]
    rows = []
    for i, r in enumerate(R):
        row = {"references_R": float(r)}
        for k, v in series.items():
            row[k] = v[i]
        rows.append(row)
    exponents = {
        f"L={L}": round(MVS_WORKLOAD.effective_exponent(L), 4) for L in LINE_SIZES
    }
    text = format_series(
        [float(r) for r in R], series, x_label="references_R",
        title="Unique lines referenced (MVS workload)", precision=1,
    )
    text += f"\n\neffective power-law exponents of R (ref [26]): {exponents}"
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        rows=rows,
        text=text,
        notes="W=2.19827, a=0.033233, b=0.827457, log10 d=-0.13025 (quoted).",
        meta={"exponents": exponents},
    )
