"""E11 — Percent delay reduction from affinity under IPS, V family
(paper Fig. 11).

The IPS counterpart of E10: the unaffinitized reference is IPS with
stacks scheduled onto random idle processors (no affinity), against the
better of IPS-wired / IPS-MRU.  Because every stack migration invalidates
the whole stack-private footprint, the affinity gap under IPS is at least
as large as under Locking.

Status: figure role quoted ("Figures 10 and 11 ... under Locking and IPS,
respectively"); V grid reconstructed.
"""

from __future__ import annotations

from typing import Optional

from ..analysis.tables import format_series
from ..core.policies import IPSPolicy, SchedulerView
from .base import ExperimentResult
from .e10_reduction_locking import V_VALUES, reduction_sweep

EXPERIMENT_ID = "e11"
TITLE = "IPS: % delay reduction from affinity scheduling vs rate (Fig. 11)"


class IPSRandomPolicy(IPSPolicy):
    """Unaffinitized IPS reference: a runnable stack goes to a uniformly
    random idle processor (defined here because it is a *reference* policy
    for this figure, not one the paper proposes)."""

    name = "ips-random"

    def select_processor(self, stack_id: int, view: SchedulerView,
                         stack_last_proc: Optional[int]) -> Optional[int]:
        idle = view.idle_processors()
        if not idle:
            return None
        return view.random_choice(idle)


def run(fast: bool = True, seed: int = 1, **_) -> ExperimentResult:
    # Register the reference policy for this run (idempotent).
    from ..core.policies import IPS_POLICIES
    IPS_POLICIES.setdefault("ips-random", IPSRandomPolicy)

    rate_grid = (
        (2_000, 8_000, 16_000, 28_000, 40_000)
        if fast
        else (1_000, 2_000, 4_000, 8_000, 12_000, 16_000, 20_000, 26_000,
              32_000, 38_000, 42_000, 44_000)
    )
    rows, series = reduction_sweep(
        ("ips", "ips-random"),
        (("ips", "ips-wired"), ("ips", "ips-mru")),
        fast, seed, V_VALUES, rate_grid,
    )
    v0_vals = [v for v in series["V=0.0"] if v == v]
    v0_peak = max(v0_vals) if v0_vals else float("nan")
    text = format_series(
        [r["rate_pps"] for r in rows], series, x_label="rate_pps",
        title="% reduction in mean delay (best IPS affinity policy vs random)",
        precision=1,
    )
    from ..analysis.plot import ascii_plot
    text += "\n\n" + ascii_plot(
        [r["rate_pps"] for r in rows], series, x_label="rate_pps",
        y_label="% reduction", title="Fig. 11 shape",
    )
    text += f"\n\nV=0 curve peak: {v0_peak:.1f}% (paper band: 40-50%)"
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        rows=rows,
        text=text,
        notes=(
            "Stack migration under unaffinitized IPS costs the entire "
            "stack-private footprint, so affinity matters at least as much "
            "as under Locking."
        ),
        meta={"v0_peak_percent": v0_peak},
    )
