"""E06 — Affinity scheduling under Locking, few streams (paper Fig. 6).

Mean packet delay vs aggregate packet arrival rate for the Locking
paradigm with 8 streams on 8 processors, comparing the unaffinitized
baseline with the affinity policies.  The paper's conclusion to
reproduce: "Under Locking, processors should be managed MRU — except
under high arrival rate, when Wired-Streams scheduling performs better."

Status: figure existence and conclusion quoted; the exact rate grid is
reconstructed (swept from light load to past the baseline's saturation).
"""

from __future__ import annotations

from typing import Dict

from ..analysis.tables import format_series
from ..sim.system import SystemConfig
from ..workloads.traffic import TrafficSpec
from .base import ExperimentResult, PolicySpec, delay_vs_rate_sweep

EXPERIMENT_ID = "e06"
TITLE = "Locking: mean packet delay vs arrival rate, 8 streams (Fig. 6)"

POLICIES: Dict[str, PolicySpec] = {
    "fcfs(baseline)": ("locking", "fcfs"),
    "mru": ("locking", "mru"),
    "stream-mru": ("locking", "stream-mru"),
    "pools": ("locking", "pools"),
    "wired-streams": ("locking", "wired-streams"),
}

N_STREAMS = 8


def base_config(fast: bool, seed: int) -> SystemConfig:
    return SystemConfig(
        traffic=TrafficSpec.homogeneous_poisson(N_STREAMS, 1000.0),  # replaced per point
        duration_us=400_000 if fast else 2_000_000,
        warmup_us=60_000 if fast else 300_000,
        seed=seed,
    )


def rates(fast: bool):
    if fast:
        return (2_000, 8_000, 16_000, 24_000, 32_000, 38_000, 42_000)
    return (1_000, 2_000, 4_000, 8_000, 12_000, 16_000, 20_000, 24_000,
            28_000, 32_000, 34_000, 36_000, 38_000, 40_000, 42_000, 44_000)


def run(fast: bool = True, seed: int = 1, **_) -> ExperimentResult:
    rows, series = delay_vs_rate_sweep(
        base_config(fast, seed), POLICIES, rates(fast), N_STREAMS
    )
    text = format_series(
        [r["rate_pps"] for r in rows], series, x_label="rate_pps",
        title="Mean packet delay (µs); inf = saturated", precision=1,
    )
    from ..analysis.plot import ascii_plot
    text += "\n\n" + ascii_plot(
        [r["rate_pps"] for r in rows], series, x_label="rate_pps",
        y_label="mean delay (us)", title="Fig. 6 shape",
    )
    # Locate the MRU -> Wired-Streams crossover.
    crossover = None
    for r in rows:
        mru, wired = r["mru"], r["wired-streams"]
        if wired < mru:
            crossover = r["rate_pps"]
            break
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        rows=rows,
        text=text,
        notes=(
            f"MRU beats the unaffinitized baseline throughout; Wired-Streams "
            f"overtakes MRU at high rate (first observed at "
            f"{crossover if crossover else 'beyond sweep'} pps)."
        ),
        meta={"crossover_pps": crossover, "policies": list(POLICIES)},
    )
