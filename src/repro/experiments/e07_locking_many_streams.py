"""E07 — Affinity scheduling under Locking, many streams (paper Fig. 7).

The companion to E06 with 64 concurrent streams: heavier per-processor
multiplexing displaces stream state faster, and the abstract's claim that
affinity scheduling "enables the host to support a greater number of
concurrent streams" shows up as the affinity policies remaining stable at
rates where the baseline saturates.

Status: figure existence quoted; stream count and rate grid reconstructed.
"""

from __future__ import annotations

from typing import Dict

from ..analysis.tables import format_series
from ..sim.system import SystemConfig
from ..workloads.traffic import TrafficSpec
from .base import ExperimentResult, PolicySpec, delay_vs_rate_sweep

EXPERIMENT_ID = "e07"
TITLE = "Locking: mean packet delay vs arrival rate, 64 streams (Fig. 7)"

POLICIES: Dict[str, PolicySpec] = {
    "fcfs(baseline)": ("locking", "fcfs"),
    "mru": ("locking", "mru"),
    "stream-mru": ("locking", "stream-mru"),
    "pools": ("locking", "pools"),
    "wired-streams": ("locking", "wired-streams"),
}

N_STREAMS = 64


def run(fast: bool = True, seed: int = 1, **_) -> ExperimentResult:
    base = SystemConfig(
        traffic=TrafficSpec.homogeneous_poisson(N_STREAMS, 1000.0),
        duration_us=400_000 if fast else 2_000_000,
        warmup_us=60_000 if fast else 300_000,
        seed=seed,
    )
    if fast:
        rate_grid = (2_000, 8_000, 16_000, 24_000, 32_000, 38_000, 42_000)
    else:
        rate_grid = (1_000, 4_000, 8_000, 12_000, 16_000, 20_000, 24_000,
                     28_000, 32_000, 36_000, 38_000, 40_000, 42_000, 44_000)
    rows, series = delay_vs_rate_sweep(base, POLICIES, rate_grid, N_STREAMS)
    text = format_series(
        [r["rate_pps"] for r in rows], series, x_label="rate_pps",
        title="Mean packet delay (µs), 64 streams; inf = saturated",
        precision=1,
    )
    from ..analysis.plot import ascii_plot
    text += "\n\n" + ascii_plot(
        [r["rate_pps"] for r in rows], series, x_label="rate_pps",
        y_label="mean delay (us)", title="Fig. 7 shape",
    )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        rows=rows,
        text=text,
        notes=(
            "With 64 streams, per-stream affinity is harder to retain "
            "(heavier multiplexing per processor); the MRU family still "
            "dominates the baseline and wired-streams still wins nearest "
            "saturation."
        ),
        meta={"n_streams": N_STREAMS},
    )
