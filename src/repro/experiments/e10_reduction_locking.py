"""E10 — Percent delay reduction from affinity under Locking, V family
(paper Fig. 10).

Plots the relative reduction in mean packet delay enabled by affinity
scheduling (best affinity policy vs the unaffinitized baseline) as a
function of arrival rate, one curve per non-protocol intensity ``V``.

The quoted anchor: "The upper bound on the reduction (as given by the
V=0 curves) is around 40-50%."  With ``V = 0`` nothing displaces the
cached footprint between packets, so the affinity-scheduled system runs
fully warm while the baseline still pays all migration penalties — the
best case for affinity scheduling.

Status: figure role and the V=0 anchor quoted; V grid reconstructed
(DESIGN.md §4.2 discusses the interpretation of V).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from ..analysis.tables import format_series
from ..runner import get_runner
from ..sim.system import SystemConfig
from ..workloads.traffic import TrafficSpec
from .base import ExperimentResult

EXPERIMENT_ID = "e10"
TITLE = "Locking: % delay reduction from affinity scheduling vs rate (Fig. 10)"

V_VALUES: Tuple[float, ...] = (0.0, 0.25, 0.5, 1.0)
N_STREAMS = 8
BASELINE = ("locking", "fcfs")
AFFINITY = (("locking", "mru"), ("locking", "stream-mru"),
            ("locking", "wired-streams"))


def reduction_sweep(
    paradigm_baseline, affinity_policies, fast: bool, seed: int,
    v_values: Sequence[float], rate_grid: Sequence[float],
    n_streams: int = N_STREAMS,
):
    """Shared by E10/E11: % reduction of best affinity policy vs baseline.

    The full rate x V x policy grid (baseline + every affinity candidate)
    is independent, so all of it is submitted to the sweep runner in one
    batch and the reductions are assembled afterwards in grid order.
    """
    duration_us = 400_000 if fast else 2_000_000
    warmup_us = 60_000 if fast else 300_000
    configs: List[SystemConfig] = []
    for rate in rate_grid:
        traffic = TrafficSpec.homogeneous_poisson(n_streams, rate)
        for v in v_values:
            base_cfg = SystemConfig(
                traffic=traffic, paradigm=paradigm_baseline[0],
                policy=paradigm_baseline[1], nonprotocol_intensity=v,
                duration_us=duration_us, warmup_us=warmup_us, seed=seed,
            )
            configs.append(base_cfg)
            configs.extend(
                base_cfg.with_(paradigm=paradigm, policy=policy)
                for paradigm, policy in affinity_policies
            )
    summaries = iter(get_runner().run_many(configs))

    rows = []
    series: Dict[str, list] = {f"V={v}": [] for v in v_values}
    for rate in rate_grid:
        row = {"rate_pps": rate}
        for v in v_values:
            base_summary = next(summaries)
            best = None
            for _ in affinity_policies:
                s = next(summaries)
                if s.stable and (best is None or s.mean_delay_us < best):
                    best = s.mean_delay_us
            if not base_summary.stable and best is not None:
                red = 1.0  # baseline saturated, affinity stable
            elif best is None or not base_summary.stable:
                red = float("nan")
            else:
                red = 1.0 - best / base_summary.mean_delay_us
            row[f"V={v}"] = round(red * 100.0, 1)
            series[f"V={v}"].append(round(red * 100.0, 1))
        rows.append(row)
    return rows, series


def run(fast: bool = True, seed: int = 1, **_) -> ExperimentResult:
    rate_grid = (
        (2_000, 8_000, 16_000, 28_000, 38_000)
        if fast
        else (1_000, 2_000, 4_000, 8_000, 12_000, 16_000, 20_000, 26_000,
              32_000, 36_000, 38_000, 40_000)
    )
    rows, series = reduction_sweep(
        BASELINE, AFFINITY, fast, seed, V_VALUES, rate_grid
    )
    v0_peak = max(v for v in series["V=0.0"] if v == v)  # NaN-safe max
    text = format_series(
        [r["rate_pps"] for r in rows], series, x_label="rate_pps",
        title="% reduction in mean delay (best affinity policy vs FCFS baseline)",
        precision=1,
    )
    from ..analysis.plot import ascii_plot
    text += "\n\n" + ascii_plot(
        [r["rate_pps"] for r in rows], series, x_label="rate_pps",
        y_label="% reduction", title="Fig. 10 shape",
    )
    text += f"\n\nV=0 curve peak: {v0_peak:.1f}% (paper band: 40-50%)"
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        rows=rows,
        text=text,
        notes=(
            "Reduction shrinks as V grows (the displacing workload erodes "
            "retained affinity); 100% entries mark rates where the baseline "
            "saturates while affinity scheduling remains stable."
        ),
        meta={"v0_peak_percent": v0_peak},
    )
