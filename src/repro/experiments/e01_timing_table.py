"""E01 — Measured packet execution-time bounds (paper Table 1).

Regenerates the paper's conditioned-measurement table: packet execution
time with the protocol footprint fully warm, displaced from L1 only, and
fully cold, plus the component-isolation breakdown ("an experimental
method for isolating the individual components of affinity-based
overhead").

Status: the paper quotes ``t_cold = 284.3 µs`` ("protocol receive time
tends to t_cold"); the other cells are measured on the simulated platform
and anchored to that number (see
:func:`repro.measurement.calibrate.scale_to_target`).
"""

from __future__ import annotations

from ..analysis.tables import format_kv, format_table
from ..core.params import PAPER_COSTS
from ..measurement.cachestate import CacheStateExperiment, FootprintLayout
from ..measurement.calibrate import derive_composition, derive_costs, scale_to_target
from .base import ExperimentResult

EXPERIMENT_ID = "e01"
TITLE = "Packet execution-time bounds under conditioned cache state (Table 1)"


def run(fast: bool = True, seed: int = 1, layout: FootprintLayout = None,
        **_) -> ExperimentResult:
    """Run the measurement matrix; ``fast`` has no effect (always quick)."""
    experiment = CacheStateExperiment(layout or FootprintLayout())
    measured = experiment.measure_all()
    raw = derive_costs(experiment)
    anchored = scale_to_target(raw, PAPER_COSTS.t_cold_us)
    composition = derive_composition(experiment)
    breakdown = experiment.component_breakdown()

    rows = []
    for cond, label in (("warm", "fully warm (L1+L2)"),
                        ("l2_warm", "L1 displaced, L2 warm"),
                        ("cold", "fully cold")):
        m = measured[cond]
        anchored_value = {
            "warm": anchored.t_warm_us,
            "l2_warm": anchored.t_l2_us,
            "cold": anchored.t_cold_us,
        }[cond]
        rows.append({
            "condition": label,
            "measured_us": round(m.time_us, 1),
            "anchored_us": round(anchored_value, 1),
            "l1_misses": m.l1_misses,
            "l2_misses": m.l2_misses,
            "paper_preset_us": {
                "warm": PAPER_COSTS.t_warm_us,
                "l2_warm": PAPER_COSTS.t_l2_us,
                "cold": PAPER_COSTS.t_cold_us,
            }[cond],
        })

    text = format_table(rows, title="Execution-time bounds (µs)")
    text += "\n\n" + format_table(
        [
            {"component": k, "isolated_overhead_us": round(v, 1),
             "weight": round(getattr(composition, k), 3)}
            for k, v in breakdown.items()
        ],
        title="Component isolation (overhead when only that component is cold)",
    )
    text += "\n\n" + format_kv(
        {
            "max affinity benefit 1 - t_warm/t_cold": f"{anchored.max_affinity_benefit:.1%}",
            "paper's V=0 reduction band": "40-50%",
        }
    )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        rows=rows,
        text=text,
        notes=(
            "t_cold anchored to the paper's quoted 284.3 us; intermediate "
            "bounds and the component split are measured on the simulated "
            "R4400/Challenge platform (DESIGN.md substitution table)."
        ),
        meta={
            "anchored_costs": anchored,
            "derived_composition": composition,
        },
    )
