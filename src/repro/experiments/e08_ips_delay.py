"""E08 — IPS delay vs rate, and IPS vs Locking (paper Figs. 8/9 region).

Two questions from the paper's second contribution (comparing the
parallelization alternatives):

1. Within IPS: "independent stacks should be wired to processors — except
   under low arrival rate, when MRU processor scheduling performs better."
2. Across paradigms: "IPS ... delivers much lower message latency and
   significantly higher message throughput capacity" than Locking.

This experiment sweeps the arrival rate for IPS-wired, IPS-MRU, and the
best Locking policies, and also exposes the paper's stated extension
(iii): "exploring under IPS the impact of varying the number of
independent stacks" via the ``stack_counts`` override.

Status: conclusions quoted; figure numbering/grids reconstructed.
"""

from __future__ import annotations

from typing import Dict, Sequence

from ..analysis.tables import format_series, format_table
from ..runner import get_runner
from ..sim.system import SystemConfig
from ..workloads.traffic import TrafficSpec
from .base import ExperimentResult, PolicySpec, delay_vs_rate_sweep

EXPERIMENT_ID = "e08"
TITLE = "IPS: delay vs rate; IPS-wired vs IPS-MRU vs best Locking (Figs. 8/9)"

POLICIES: Dict[str, PolicySpec] = {
    "ips-wired": ("ips", "ips-wired"),
    "ips-mru": ("ips", "ips-mru"),
    "locking-mru": ("locking", "mru"),
    "locking-wired": ("locking", "wired-streams"),
}

N_STREAMS = 8


def run(fast: bool = True, seed: int = 1,
        stack_counts: Sequence[int] = (2, 4, 8), **_) -> ExperimentResult:
    base = SystemConfig(
        traffic=TrafficSpec.homogeneous_poisson(N_STREAMS, 1000.0),
        duration_us=400_000 if fast else 2_000_000,
        warmup_us=60_000 if fast else 300_000,
        seed=seed,
    )
    if fast:
        rate_grid = (500, 2_000, 8_000, 16_000, 28_000, 38_000, 44_000)
    else:
        rate_grid = (250, 500, 1_000, 2_000, 4_000, 8_000, 12_000, 16_000,
                     20_000, 26_000, 32_000, 38_000, 42_000, 44_000, 46_000)
    rows, series = delay_vs_rate_sweep(base, POLICIES, rate_grid, N_STREAMS)

    # Extension (iii): number of independent stacks at a mid-range load.
    mid_rate = 16_000
    stack_summaries = get_runner().run_many([
        base.with_(
            traffic=TrafficSpec.homogeneous_poisson(N_STREAMS, mid_rate),
            paradigm="ips", policy="ips-wired", n_stacks=k,
        )
        for k in stack_counts
    ])
    stack_rows = []
    for k, s in zip(stack_counts, stack_summaries):
        stack_rows.append({
            "n_stacks": k,
            "mean_delay_us": round(s.mean_delay_us, 1),
            "mean_exec_us": round(s.mean_exec_us, 1),
            "throughput_pps": round(s.throughput_pps),
        })

    text = format_series(
        [r["rate_pps"] for r in rows], series, x_label="rate_pps",
        title="Mean packet delay (µs); inf = saturated", precision=1,
    )
    from ..analysis.plot import ascii_plot
    text += "\n\n" + ascii_plot(
        [r["rate_pps"] for r in rows], series, x_label="rate_pps",
        y_label="mean delay (us)", title="Figs. 8/9 shape",
    )
    text += "\n\n" + format_table(
        stack_rows,
        title=f"Extension (iii): varying stack count at {mid_rate} pps (IPS-wired)",
    )

    crossover = None
    for r in rows:
        if r["ips-wired"] <= r["ips-mru"]:
            crossover = r["rate_pps"]
            break
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        rows=rows + stack_rows,
        text=text,
        notes=(
            f"IPS-MRU wins below ~{crossover if crossover else '?'} pps, "
            "wired above; IPS tracks below the Locking curves throughout "
            "and saturates later."
        ),
        meta={"ips_crossover_pps": crossover, "stack_counts": list(stack_counts)},
    )
