"""Per-artifact experiments: one module per paper table/figure.

See DESIGN.md §3 for the experiment index (E01-E14), including each
artifact's quoted-vs-reconstructed status, and EXPERIMENTS.md for the
paper-vs-measured record.  Run everything with ``python -m repro all``.
"""

from .base import (
    EXPERIMENT_IDS,
    ExperimentResult,
    all_experiments,
    delay_vs_rate_sweep,
    find_capacity,
    load_experiment,
    run_experiment,
)

__all__ = [
    "EXPERIMENT_IDS",
    "ExperimentResult",
    "all_experiments",
    "delay_vs_rate_sweep",
    "find_capacity",
    "load_experiment",
    "run_experiment",
]
