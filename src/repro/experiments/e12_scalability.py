"""E12 — Intra-stream scalability: single-stream throughput vs CPUs.

The abstract: IPS "exhibits ... limited intra-stream scalability" — a
single stream is bound to one stack, which executes serially, so adding
processors cannot raise that stream's maximum throughput.  Under Locking,
a single stream's packets may execute concurrently on every processor
(paying migration penalties), so its ceiling scales with N.

For one Poisson stream, the maximum sustainable rate is bisected for
N = 1..8 processors under Locking-MRU and IPS-wired.

Status: reconstructed from the abstract's claim.
"""

from __future__ import annotations

from ..analysis.tables import format_table
from ..core.params import PlatformConfig
from ..sim.system import SystemConfig
from ..workloads.traffic import TrafficSpec
from .base import ExperimentResult, find_capacity

EXPERIMENT_ID = "e12"
TITLE = "Intra-stream scalability: single-stream capacity vs processors"


def run(fast: bool = True, seed: int = 1, **_) -> ExperimentResult:
    duration_us = 300_000 if fast else 1_200_000
    warmup_us = 50_000 if fast else 200_000
    iterations = 6 if fast else 10
    cpu_counts = (1, 2, 4, 8) if fast else (1, 2, 3, 4, 5, 6, 7, 8)

    rows = []
    for n in cpu_counts:
        platform = PlatformConfig(n_processors=n)
        caps = {}
        for label, paradigm, policy in (
            ("locking-mru", "locking", "mru"),
            ("ips-wired", "ips", "ips-wired"),
        ):
            def make(rate: float, paradigm=paradigm, policy=policy) -> SystemConfig:
                return SystemConfig(
                    traffic=TrafficSpec.single_stream(rate),
                    paradigm=paradigm, policy=policy, platform=platform,
                    duration_us=duration_us, warmup_us=warmup_us, seed=seed,
                )
            caps[label] = find_capacity(
                make, low_pps=1_000, high_pps=60_000, iterations=iterations
            )
        rows.append({
            "n_processors": n,
            "locking_capacity_pps": round(caps["locking-mru"]),
            "ips_capacity_pps": round(caps["ips-wired"]),
        })

    # Scalability = capacity(N) / capacity(1).
    for key in ("locking_capacity_pps", "ips_capacity_pps"):
        base_cap = rows[0][key]
        for r in rows:
            r[key.replace("_capacity_pps", "_speedup")] = round(r[key] / base_cap, 2)

    text = format_table(
        rows, title="Single-stream maximum throughput vs processor count"
    )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        rows=rows,
        text=text,
        notes=(
            "Locking's single-stream ceiling grows with N (at degraded "
            "per-packet cost from constant state migration); IPS stays flat "
            "at one stack's serial rate — the paper's 'limited intra-stream "
            "scalability'."
        ),
        meta={"cpu_counts": cpu_counts},
    )
