"""Experiment framework: results, sweeps, and the registry.

Every paper artifact (table or figure) has a module ``eNN_*.py`` exposing

``EXPERIMENT_ID`` / ``TITLE``
    identifiers used by the registry and CLI, and
``run(fast=True, seed=1, **overrides) -> ExperimentResult``
    regenerates the artifact's rows/series.  ``fast=True`` (the default,
    used by tests and benchmarks) shrinks horizons and sweep densities;
    ``fast=False`` runs publication-length simulations.

Results carry both structured rows and pre-rendered text so the benchmark
harness prints the same rows/series the paper reports.
"""

from __future__ import annotations

import importlib
import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from ..runner import SweepRunner, get_runner
from ..sim.system import SystemConfig

__all__ = [
    "ExperimentResult",
    "delay_vs_rate_sweep",
    "find_capacity",
    "ABLATION_IDS",
    "ALL_IDS",
    "EXTENSION_IDS",
    "EXPERIMENT_IDS",
    "load_experiment",
    "run_experiment",
    "all_experiments",
]


@dataclass
class ExperimentResult:
    """Structured + rendered output of one experiment."""

    experiment_id: str
    title: str
    rows: List[Dict[str, object]]
    text: str
    notes: str = ""
    meta: Dict[str, object] = field(default_factory=dict)

    def __str__(self) -> str:
        header = f"[{self.experiment_id}] {self.title}"
        parts = [header, "=" * len(header), self.text]
        if self.notes:
            parts += ["", self.notes]
        return "\n".join(parts)

    def to_csv(self, path) -> None:
        """Write the structured rows as CSV (columns = union of keys, in
        first-appearance order)."""
        import csv

        columns: List[str] = []
        for row in self.rows:
            for key in row:
                if key not in columns:
                    columns.append(key)
        with open(path, "w", newline="") as fh:
            writer = csv.DictWriter(fh, fieldnames=columns, restval="")
            writer.writeheader()
            for row in self.rows:
                writer.writerow(row)


# ----------------------------------------------------------------------
# Shared sweep helpers
# ----------------------------------------------------------------------
PolicySpec = Tuple[str, str]  # (paradigm, policy-name)


def delay_vs_rate_sweep(
    base: SystemConfig,
    policies: Mapping[str, PolicySpec],
    rates_pps: Sequence[float],
    n_streams: int,
    runner: Optional[SweepRunner] = None,
) -> Tuple[List[Dict[str, object]], Dict[str, List[float]]]:
    """Mean packet delay vs aggregate arrival rate for several policies.

    Uses common random numbers: every policy at a given rate sees the
    identical arrival sample path (same seed, same traffic spec), so
    cross-policy differences are pure scheduling effects.

    The whole rate x policy grid of independent runs executes through the
    sweep runner (parallel and/or cached when one is installed); results
    are assembled in deterministic (rate-major, policy-order) order, so
    the output is identical however the runs were executed.

    Returns ``(rows, series)`` where rows are flat dicts (one per rate)
    and series maps policy label -> list of mean delays.
    """
    from ..workloads.traffic import TrafficSpec

    runner = runner if runner is not None else get_runner()
    configs: List[SystemConfig] = []
    for rate in rates_pps:
        traffic = TrafficSpec.homogeneous_poisson(n_streams, rate)
        for paradigm, policy in policies.values():
            configs.append(
                base.with_(traffic=traffic, paradigm=paradigm, policy=policy)
            )
    summaries = iter(runner.run_many(configs, label="delay_vs_rate"))

    series: Dict[str, List[float]] = {label: [] for label in policies}
    rows: List[Dict[str, object]] = []
    for rate in rates_pps:
        row: Dict[str, object] = {"rate_pps": rate}
        for label in policies:
            summary = next(summaries)
            delay_us = summary.mean_delay_us if summary.stable else float("inf")
            series[label].append(delay_us)
            row[label] = delay_us
        rows.append(row)
    return rows, series


def find_capacity(
    make_config: Callable[[float], SystemConfig],
    low_pps: float,
    high_pps: float,
    iterations: int = 10,
    *,
    points_per_round: int = 3,
    runner: Optional[SweepRunner] = None,
) -> float:
    """Find the maximum sustainable aggregate arrival rate by k-section.

    ``make_config(rate)`` builds the run; stability is judged by
    :attr:`repro.sim.metrics.SimulationSummary.stable` (no growing
    backlog).  ``high_pps`` must be unstable and ``low_pps`` stable or the
    bracket is widened/narrowed accordingly.

    Each round speculatively evaluates ``points_per_round`` equally spaced
    interior points of the bracket **concurrently** (through the sweep
    runner), then keeps the sub-interval spanning the stability boundary —
    a (k+1)-section search.  ``points_per_round=1`` is classic bisection.
    ``iterations`` is expressed in *equivalent bisection halvings*: the
    number of rounds is chosen so the final bracket is at least as tight
    as ``iterations`` binary steps, which keeps the precision contract of
    the old serial signature while letting a parallel runner finish in
    roughly ``log(k+1)``-fold fewer rounds of wall-clock.

    The evaluated grid depends only on the arguments — never on worker
    count — so parallel and serial searches return identical capacities.
    """
    if low_pps <= 0 or high_pps <= low_pps:
        raise ValueError("need 0 < low_pps < high_pps")
    if points_per_round < 1:
        raise ValueError("points_per_round must be >= 1")
    runner = runner if runner is not None else get_runner()
    lo, hi = low_pps, high_pps
    # Ensure the bracket: lo stable, hi unstable (best effort).
    lo_summary, hi_summary = runner.run_many(
        [make_config(lo), make_config(hi)], label="capacity_bracket"
    )
    if not lo_summary.stable:
        return lo
    if hi_summary.stable:
        return hi
    rounds = max(1, math.ceil(iterations / math.log2(points_per_round + 1)))
    for _ in range(rounds):
        step = (hi - lo) / (points_per_round + 1)
        mids = [lo + step * (i + 1) for i in range(points_per_round)]
        summaries = runner.run_many([make_config(m) for m in mids],
                                    label="capacity_search")
        # Keep the sub-interval containing the stability boundary
        # (stability is assumed monotone in rate, as in plain bisection).
        new_lo, new_hi = lo, hi
        for mid, summary in zip(mids, summaries):
            if summary.stable:
                new_lo = mid
            else:
                new_hi = mid
                break
        lo, hi = new_lo, new_hi
    return lo


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
EXPERIMENT_IDS: Tuple[str, ...] = (
    "e01", "e02", "e03", "e04", "e05", "e06", "e07",
    "e08", "e09", "e10", "e11", "e12", "e13", "e14", "e15",
)

#: Ablation studies of the reconstructed parameters (DESIGN.md §4).
ABLATION_IDS: Tuple[str, ...] = ("a01", "a02", "a03", "a04", "a05")

#: Extension experiments (paper's stated future work: TR [17] hybrid,
#: packet-train traffic [9]).
EXTENSION_IDS: Tuple[str, ...] = ("x01", "x02", "x03")

#: Everything runnable from the CLI.
ALL_IDS: Tuple[str, ...] = EXPERIMENT_IDS + ABLATION_IDS + EXTENSION_IDS

_MODULES = {
    "e01": "e01_timing_table",
    "e02": "e02_footprint",
    "e03": "e03_flush_curves",
    "e04": "e04_cache_validation",
    "e05": "e05_exec_time",
    "e06": "e06_locking_few_streams",
    "e07": "e07_locking_many_streams",
    "e08": "e08_ips_delay",
    "e09": "e09_capacity",
    "e10": "e10_reduction_locking",
    "e11": "e11_reduction_ips",
    "e12": "e12_scalability",
    "e13": "e13_burstiness",
    "e14": "e14_data_touching",
    "e15": "e15_policy_zoo",
}


def load_experiment(experiment_id: str):
    """Import and return an experiment module by id."""
    key = experiment_id.lower()
    if key in ABLATION_IDS:
        return importlib.import_module("repro.experiments.ablations")
    if key in EXTENSION_IDS:
        return importlib.import_module("repro.experiments.extensions")
    if key not in _MODULES:
        raise ValueError(
            f"unknown experiment {experiment_id!r}; known: "
            f"{sorted(_MODULES) + list(ABLATION_IDS)}"
        )
    return importlib.import_module(f"repro.experiments.{_MODULES[key]}")


def run_experiment(experiment_id: str, fast: bool = True, **kwargs) -> ExperimentResult:
    """Run one experiment or ablation by id."""
    key = experiment_id.lower()
    module = load_experiment(key)
    if key in ABLATION_IDS or key in EXTENSION_IDS:
        return getattr(module, f"run_{key}")(fast=fast, **kwargs)
    return module.run(fast=fast, **kwargs)


def all_experiments(
    fast: bool = True,
    ids: Optional[Sequence[str]] = None,
    runner: Optional[SweepRunner] = None,
) -> List[ExperimentResult]:
    """Run the full suite (or ``ids``) in order.

    When ``runner`` is given it is installed as the default for the whole
    suite, so every sweep inside every experiment fans out through it (and
    shares its result cache).
    """
    from ..runner import use_runner

    ids = EXPERIMENT_IDS if ids is None else tuple(ids)
    if runner is None:
        return [run_experiment(eid, fast=fast) for eid in ids]
    with use_runner(runner):
        return [run_experiment(eid, fast=fast) for eid in ids]
