"""Extension experiments beyond the paper's published artifacts.

The paper closes with a list of extensions under pursuit; two are
substantial enough to deserve their own experiments here:

``x01`` — **hybrid scheduling** (TR [17]): "a hybrid approach for a
    specific class of streams, which offers the best overall performance
    yielding high message throughput, high intra-stream scalability, and
    robustness in the presence of bursty arrivals."  We evaluate the
    reconstruction (wired queues + overflow stealing) against wired
    Locking, MRU Locking, and wired IPS on all three axes at once.

``x02`` — **packet-train traffic** (extension (ii), model of [9]):
    affinity-scheduling performance "as a function of stream burstiness
    and source locality, as captured by the Packet-Train model".  We sweep
    the mean train length at constant offered load and measure each
    policy's delay on the train-structured stream.

``x03`` — **concurrent-stream capacity** (abstract: affinity scheduling
    "enabl[es] the host to support a greater number of concurrent
    streams"): streams open and close as a birth-death process
    (:class:`repro.workloads.SessionChurnSpec`); we sweep the mean
    concurrent population and report each policy's mean delay, then the
    largest population it supports under a delay ceiling.

Run with ``python -m repro run x01`` / ``x02`` / ``x03``.
"""

from __future__ import annotations

from typing import Dict, List

from ..analysis.tables import format_table
from ..sim.system import SystemConfig, run_simulation
from ..workloads.arrivals import PoissonSpec
from ..workloads.packet_train import PacketTrainSpec
from ..workloads.traffic import TrafficSpec
from .base import ExperimentResult, find_capacity

__all__ = ["run_x01", "run_x02", "run_x03"]

CONTENDERS = {
    "locking-mru": ("locking", "mru"),
    "locking-wired": ("locking", "wired-streams"),
    "hybrid[17]": ("locking", "hybrid"),
    "ips-wired": ("ips", "ips-wired"),
}


def run_x01(fast: bool = True, seed: int = 1, **_) -> ExperimentResult:
    """Hybrid scheduling scorecard: throughput, scalability, burst robustness."""
    duration_us = 300_000 if fast else 1_500_000
    warmup_us = 50_000 if fast else 250_000
    iterations = 5 if fast else 9

    rows: List[Dict] = []
    for label, (paradigm, policy) in CONTENDERS.items():
        # Axis 1: aggregate throughput capacity (16 streams).
        cap = find_capacity(
            lambda r, paradigm=paradigm, policy=policy: SystemConfig(
                traffic=TrafficSpec.homogeneous_poisson(16, r),
                paradigm=paradigm, policy=policy,
                duration_us=duration_us, warmup_us=warmup_us, seed=seed,
            ),
            low_pps=5_000, high_pps=80_000, iterations=iterations,
        )
        # Axis 2: single-stream capacity on 8 CPUs (intra-stream scaling).
        single = find_capacity(
            lambda r, paradigm=paradigm, policy=policy: SystemConfig(
                traffic=TrafficSpec.single_stream(r),
                paradigm=paradigm, policy=policy,
                duration_us=duration_us, warmup_us=warmup_us, seed=seed,
            ),
            low_pps=1_000, high_pps=60_000, iterations=iterations,
        )
        # Axis 3: bursty-stream delay at burst size 16, constant load.
        burst_cfg = SystemConfig(
            traffic=TrafficSpec.one_bursty_among_smooth(8, 16_000, 16.0),
            paradigm=paradigm, policy=policy,
            duration_us=duration_us, warmup_us=warmup_us, seed=seed,
        )
        burst_delay_us = run_simulation(burst_cfg).per_stream_mean_delay_us.get(
            0, float("nan")
        )
        # Axis 4: smooth-traffic latency at moderate load.
        smooth_cfg = SystemConfig(
            traffic=TrafficSpec.homogeneous_poisson(8, 16_000),
            paradigm=paradigm, policy=policy,
            duration_us=duration_us, warmup_us=warmup_us, seed=seed,
        )
        smooth_delay_us = run_simulation(smooth_cfg).mean_delay_us
        rows.append({
            "policy": label,
            "capacity_pps": round(cap),
            "single_stream_pps": round(single),
            "burst16_delay_us": round(burst_delay_us, 1),
            "smooth_delay_us": round(smooth_delay_us, 1),
        })

    by_policy = {r["policy"]: r for r in rows}
    return ExperimentResult(
        experiment_id="x01",
        title="Extension: hybrid scheduling scorecard (TR [17])",
        rows=rows,
        text=format_table(rows, title="Four axes, one table"),
        notes=(
            "The hybrid should be near-wired on smooth latency/capacity "
            "while tracking MRU's burst robustness and single-stream "
            "scalability — 'the best overall performance' of TR [17]."
        ),
        meta={"by_policy": by_policy},
    )


def run_x02(fast: bool = True, seed: int = 1, **_) -> ExperimentResult:
    """Packet-train burstiness sweep (extension (ii), model of [9])."""
    duration_us = 300_000 if fast else 1_500_000
    warmup_us = 50_000 if fast else 250_000
    n_streams = 8
    total_rate = 16_000.0
    per_stream = total_rate / n_streams
    train_lengths = (1.0, 4.0, 16.0) if fast else (1.0, 2.0, 4.0, 8.0,
                                                   16.0, 32.0)

    rows: List[Dict] = []
    for trains in train_lengths:
        if trains == 1.0:
            spec = PoissonSpec(per_stream)  # degenerate train = Poisson
        else:
            spec = PacketTrainSpec.for_rate(
                per_stream, mean_train_len=trains, inter_car_us=50.0
            )
        traffic = TrafficSpec(
            (spec,) + tuple(PoissonSpec(per_stream)
                            for _ in range(n_streams - 1))
        )
        row: Dict[str, object] = {"mean_train_len": trains}
        for label, (paradigm, policy) in CONTENDERS.items():
            cfg = SystemConfig(
                traffic=traffic, paradigm=paradigm, policy=policy,
                duration_us=duration_us, warmup_us=warmup_us, seed=seed,
            )
            s = run_simulation(cfg)
            row[label] = round(s.per_stream_mean_delay_us.get(0, float("nan")), 1)
        rows.append(row)

    return ExperimentResult(
        experiment_id="x02",
        title="Extension: packet-train traffic (Jain-Routhier [9])",
        rows=rows,
        text=format_table(
            rows,
            title=(
                "Train-structured stream's mean delay (µs); 50 µs inter-car "
                f"gap, constant {total_rate:.0f} pps total"
            ),
        ),
        notes=(
            "Longer trains concentrate back-to-back packets on one stream: "
            "good for affinity (the stream stays hot) but bad for serial "
            "stacks — MRU/hybrid benefit, wired-IPS queues build up."
        ),
        meta={"train_lengths": train_lengths},
    )


def run_x03(fast: bool = True, seed: int = 1, **_) -> ExperimentResult:
    """Concurrent-stream capacity under session churn."""
    from ..workloads.sessions import SessionChurnSpec

    duration_us = 400_000 if fast else 2_000_000
    warmup_us = 60_000 if fast else 300_000
    per_stream = 300.0          # pps while a session is alive
    lifetime_us = 100_000.0     # 100 ms connections
    # The interesting range brackets the policies' capacities
    # (baseline ~125 sessions at 300 pps each, IPS ~160).
    populations = (60, 110, 135, 155) if fast else (20, 60, 90, 110, 120,
                                                    130, 140, 150, 160)
    delay_ceiling_us = 3.0 * 284.3  # ~3x t_cold

    policies = {
        "fcfs(baseline)": ("locking", "fcfs"),
        "stream-mru": ("locking", "stream-mru"),
        "ips-wired": ("ips", "ips-wired"),
    }
    rows: List[Dict] = []
    supported = {label: 0 for label in policies}
    for population in populations:
        churn = SessionChurnSpec.for_population(
            mean_sessions=float(population),
            mean_lifetime_us=lifetime_us,
            per_stream_rate_pps=per_stream,
        )
        row: Dict[str, object] = {
            "mean_sessions": population,
            "offered_pps": round(churn.offered_rate_pps),
        }
        for label, (paradigm, policy) in policies.items():
            cfg = SystemConfig(
                traffic=TrafficSpec.homogeneous_poisson(2, 500.0),  # light base
                churn=churn, paradigm=paradigm, policy=policy,
                duration_us=duration_us, warmup_us=warmup_us, seed=seed,
            )
            s = run_simulation(cfg)
            delay_us = s.mean_delay_us if s.stable else float("inf")
            row[label] = round(delay_us, 1) if delay_us != float("inf") else delay_us
            if delay_us <= delay_ceiling_us:
                supported[label] = max(supported[label], population)
        rows.append(row)

    summary = [
        {"policy": label, "max_sessions_under_ceiling": n}
        for label, n in supported.items()
    ]
    text = format_table(
        rows,
        title=(
            f"Mean delay (us) vs mean concurrent sessions "
            f"({per_stream:.0f} pps per live session, {lifetime_us/1000:.0f} ms "
            "lifetimes)"
        ),
    )
    text += "\n\n" + format_table(
        summary, title=f"Sessions supported under a {delay_ceiling_us:.0f} us ceiling"
    )
    return ExperimentResult(
        experiment_id="x03",
        title="Extension: concurrent-stream capacity under session churn",
        rows=rows + summary,
        text=text,
        notes=(
            "Affinity scheduling carries a larger live population under "
            "the same delay ceiling — the abstract's 'greater number of "
            "concurrent streams'."
        ),
        meta={"supported": supported, "delay_ceiling_us": delay_ceiling_us},
    )
