"""E04 — Validation of the analytic cache model against trace-driven
simulation.

Mirrors the validation lineage of the paper's analytic components: [22]
validated the footprint expression against real traces, and the paper's
Appendix builds F(x) on top of it.  Here we

1. generate a synthetic Zipf-locality reference trace,
2. fit the Singh-Stone-Thiebaut constants to it
   (:func:`repro.cache.validation.fit_footprint_constants`),
3. compare the analytic flushed fraction (via the *fitted* footprint
   function) with the exact displaced fraction measured by the
   trace-driven LRU cache simulator.

Status: reconstructed (the paper relies on [22]'s published validation; we
re-run the procedure because we had to substitute the trace).
"""

from __future__ import annotations

import numpy as np

from ..analysis.tables import format_kv, format_table
from ..cache.hierarchy import R4400_L1D
from ..cache.traces import uniform_trace, zipf_trace
from ..cache.validation import (
    compare_flush_model,
    fit_footprint_constants,
    measure_footprint_samples,
)
from .base import ExperimentResult

EXPERIMENT_ID = "e04"
TITLE = "Analytic flush model vs trace-driven cache simulation"


def run(fast: bool = True, seed: int = 1, **_) -> ExperimentResult:
    # repro-lint: ignore[RPR001] seeded from the experiment's explicit seed arg
    rng = np.random.default_rng(seed)
    n_refs = 60_000 if fast else 400_000
    working_set = 256 * 1024

    # 1-2: fit the footprint function to the displacing trace family.
    fit_trace = zipf_trace(n_refs, working_set, rng=rng, skew=1.3)
    checkpoints = np.unique(
        np.logspace(2, np.log10(n_refs), 8).astype(int)
    )
    samples = measure_footprint_samples(fit_trace, checkpoints, (16, 32, 128))
    fitted = fit_footprint_constants(samples, name="zipf-synthetic")

    # Fit quality: relative error at the sample points.
    fit_rows = []
    for s in samples:
        model_u = fitted.unique_lines(s.references, s.line_bytes)
        fit_rows.append({
            "R": s.references, "L": s.line_bytes,
            "measured_u": s.unique_lines, "fitted_u": round(model_u, 1),
            "rel_err": round(abs(model_u - s.unique_lines) / max(s.unique_lines, 1), 3),
        })

    # 3: flush comparison on an *independent* trace of the same family.
    # The footprint lives in a disjoint address range (the model assumes
    # the displacing stream does not re-touch footprint lines).
    footprint = uniform_trace(2_000, 8 * 1024, rng=rng, base_address=1 << 24)
    displacing = zipf_trace(n_refs, working_set, rng=rng, skew=1.3)
    comparison = compare_flush_model(
        R4400_L1D, fitted, footprint, displacing, checkpoints
    )
    flush_rows = [
        {
            "intervening_refs": r,
            "analytic_F": round(a, 3),
            "measured_F": round(m, 3),
            "abs_err": round(abs(a - m), 3),
        }
        for r, a, m in zip(
            comparison.reference_counts, comparison.analytic, comparison.measured
        )
    ]

    text = format_table(fit_rows, title="Footprint fit u(R;L) on Zipf trace")
    text += "\n\n" + format_table(
        flush_rows, title="Flushed fraction: analytic vs simulated (R4400 L1)"
    )
    text += "\n\n" + format_kv({
        "fitted W": round(fitted.W, 3),
        "fitted a": round(fitted.a, 4),
        "fitted b": round(fitted.b, 4),
        "fitted log10 d": round(fitted.log10_d, 4),
        "flush mean abs error": round(comparison.mean_abs_error, 3),
        "flush max abs error": round(comparison.max_abs_error, 3),
    })
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        rows=fit_rows + flush_rows,
        text=text,
        notes="Synthetic Zipf trace substitutes for [22]'s MVS trace.",
        meta={"fitted": fitted, "comparison": comparison},
    )
