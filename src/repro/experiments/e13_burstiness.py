"""E13 — Robustness to intra-stream burstiness: Locking vs IPS.

The abstract: IPS "exhibits less robust response to intra-stream
burstiness" — a burst on one stream serializes behind its single stack
under IPS, while Locking recruits every idle processor.

One stream sends geometric bursts (mean size swept at constant long-run
load); the other streams stay Poisson.  The response metric is the bursty
stream's own mean delay.  The packet-train arrival model [9] — the
paper's stated extension (ii) — is included as an alternative burstiness
generator.

Status: claim quoted; scenario parameters reconstructed.
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..analysis.tables import format_table
from ..runner import get_runner
from ..sim.system import SystemConfig
from ..workloads.packet_train import PacketTrainSpec
from ..workloads.arrivals import PoissonSpec
from ..workloads.traffic import TrafficSpec
from .base import ExperimentResult

EXPERIMENT_ID = "e13"
TITLE = "Intra-stream burstiness: bursty-stream delay, Locking vs IPS"

N_STREAMS = 8
TOTAL_RATE = 16_000.0
CONTENDERS: Dict[str, Tuple[str, str]] = {
    "locking-mru": ("locking", "mru"),
    "locking-wired": ("locking", "wired-streams"),
    "hybrid": ("locking", "hybrid"),
    "ips-wired": ("ips", "ips-wired"),
}


def _train_traffic(rate_per_stream: float, mean_train: float) -> TrafficSpec:
    """Stream 0 = packet trains, others Poisson (extension (ii))."""
    train = PacketTrainSpec.for_rate(
        rate_per_stream, mean_train_len=mean_train, inter_car_us=50.0
    )
    return TrafficSpec(
        (train,) + tuple(PoissonSpec(rate_per_stream) for _ in range(N_STREAMS - 1))
    )


def run(fast: bool = True, seed: int = 1, **_) -> ExperimentResult:
    duration_us = 400_000 if fast else 2_000_000
    warmup_us = 60_000 if fast else 300_000
    burst_sizes = (1, 4, 8, 16) if fast else (1, 2, 4, 8, 12, 16, 24, 32)
    per_stream = TOTAL_RATE / N_STREAMS

    train_lens = (4.0,) if fast else (4.0, 8.0, 16.0)

    # Both grids (burst-size sweep + packet-train variant) are independent
    # runs; submit everything to the sweep runner in one batch.
    configs = []
    for b in burst_sizes:
        traffic = TrafficSpec.one_bursty_among_smooth(
            N_STREAMS, TOTAL_RATE, mean_batch=float(b)
        )
        for paradigm, policy in CONTENDERS.values():
            configs.append(SystemConfig(
                traffic=traffic, paradigm=paradigm, policy=policy,
                duration_us=duration_us, warmup_us=warmup_us, seed=seed,
            ))
    for trains in train_lens:
        traffic = _train_traffic(per_stream, trains)
        for paradigm, policy in CONTENDERS.values():
            configs.append(SystemConfig(
                traffic=traffic, paradigm=paradigm, policy=policy,
                duration_us=duration_us, warmup_us=warmup_us, seed=seed,
            ))
    summaries = iter(get_runner().run_many(configs))

    rows = []
    for b in burst_sizes:
        row: Dict[str, object] = {"mean_burst": b}
        for label in CONTENDERS:
            s = next(summaries)
            row[label] = round(s.per_stream_mean_delay_us.get(0, float("nan")), 1)
        rows.append(row)

    # Packet-train variant at one burst level (extension (ii)).
    train_rows = []
    for trains in train_lens:
        row = {"mean_train_len": trains}
        for label in CONTENDERS:
            s = next(summaries)
            row[label] = round(s.per_stream_mean_delay_us.get(0, float("nan")), 1)
        train_rows.append(row)

    text = format_table(
        rows,
        title=(
            "Bursty stream's mean delay (µs) vs mean burst size "
            f"(total load {TOTAL_RATE:.0f} pps held constant)"
        ),
    )
    text += "\n\n" + format_table(
        train_rows,
        title="Packet-train arrivals [9] on stream 0 (extension (ii))",
    )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        rows=rows + train_rows,
        text=text,
        notes=(
            "IPS's bursty-stream delay grows ~linearly with burst size "
            "(serial stack); Locking grows slowly (bursts fan out across "
            "processors); the hybrid policy tracks wired at small bursts "
            "and Locking at large ones."
        ),
        meta={"burst_sizes": burst_sizes},
    )
