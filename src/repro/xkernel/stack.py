"""Stack assembly: the UDP/IP/FDDI receive fast path, plus IPS replication.

:func:`build_receive_stack` wires FDDI -> IP -> UDP exactly as the paper's
parallelized x-kernel configuration; :class:`ReceiveFastPath` bundles the
stack with its driver for convenient feeding and instrumentation; and
:func:`build_ips_stacks` creates K *independent* stack instances with
streams partitioned among them — the IPS parallelization, in which no
state whatsoever is shared between instances.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from .driver import InMemoryFDDIDriver, StreamEndpoint
from .fddi import ETHERTYPE_IP, FDDIProtocol
from .ip import IPPROTO_UDP, IPProtocol, ip_to_bytes
from .protocol import ProtocolGraph, Session
from .udp import UDPProtocol, UDPSession

__all__ = ["ReceiveFastPath", "build_receive_stack", "build_ips_stacks"]

DEFAULT_MAC = bytes([0x08, 0x00, 0x69, 0x02, 0x00, 0x01])  # SGI OUI
DEFAULT_IP = "192.168.42.1"


def build_receive_stack(
    local_mac: bytes = DEFAULT_MAC,
    local_ip: str = DEFAULT_IP,
    ports: Tuple[int, ...] = (7000,),
    verify_udp_checksum: bool = False,
) -> Tuple[ProtocolGraph, UDPProtocol]:
    """Compose FDDI/IP/UDP and bind the given ports.

    Returns the graph (feed frames to ``graph.receive``) and the UDP layer
    (for session access).
    """
    ip_bytes = ip_to_bytes(local_ip)
    fddi = FDDIProtocol(local_mac)
    ip = IPProtocol(ip_bytes)
    udp = UDPProtocol(ip_bytes, verify_payload_checksum=verify_udp_checksum)
    fddi.register_upper(ETHERTYPE_IP, ip)
    ip.register_upper(IPPROTO_UDP, udp)
    for port in ports:
        udp.open_session(port)
    return ProtocolGraph(fddi, [fddi, ip, udp]), udp


@dataclass
class ReceiveFastPath:
    """One stack instance plus its in-memory driver.

    The unit the measurement harness times and the IPS configuration
    replicates.
    """

    graph: ProtocolGraph
    udp: UDPProtocol
    driver: InMemoryFDDIDriver

    @classmethod
    def build(
        cls,
        streams: List[StreamEndpoint],
        local_mac: bytes = DEFAULT_MAC,
        local_ip: str = DEFAULT_IP,
        verify_udp_checksum: bool = False,
    ) -> "ReceiveFastPath":
        ports = tuple(sorted({s.dst_port for s in streams}))
        graph, udp = build_receive_stack(
            local_mac, local_ip, ports, verify_udp_checksum
        )
        driver = InMemoryFDDIDriver(
            local_mac, local_ip, streams,
            compute_udp_checksum=verify_udp_checksum,
        )
        return cls(graph=graph, udp=udp, driver=driver)

    def deliver(self, stream_index: int, payload_bytes: int = 64) -> Session:
        """Generate and process one packet for a stream."""
        frame = self.driver.next_frame(stream_index, payload_bytes)
        return self.graph.receive(frame)

    def deliver_many(self, n_frames: int, payload_bytes: int = 64) -> int:
        """Round-robin ``n_frames`` packets; returns delivered count."""
        for i in range(n_frames):
            self.deliver(i % self.driver.n_streams, payload_bytes)
        return n_frames

    def session_for_stream(self, stream_index: int) -> UDPSession:
        return self.udp.session(self.driver.streams[stream_index].dst_port)


def build_ips_stacks(
    streams: List[StreamEndpoint],
    n_stacks: int,
    local_mac: bytes = DEFAULT_MAC,
    local_ip: str = DEFAULT_IP,
    verify_udp_checksum: bool = False,
) -> List[ReceiveFastPath]:
    """IPS: K fully independent stack instances, streams partitioned
    ``stream_index mod K`` (the same binding the simulator uses).

    Stack ``k`` only knows about — and can only demultiplex — its own
    streams: a frame for another stack's port is a demux error, exactly
    the isolation property that lets IPS run lock-free.
    """
    if n_stacks < 1:
        raise ValueError("need at least one stack")
    if not streams:
        raise ValueError("need at least one stream")
    partitions: List[List[StreamEndpoint]] = [[] for _ in range(n_stacks)]
    for i, s in enumerate(streams):
        partitions[i % n_stacks].append(s)
    stacks = []
    for part in partitions:
        if not part:
            # A stack with no streams still exists; bind a placeholder
            # port so the instance is well-formed.
            part = [StreamEndpoint("10.255.255.254", 1, 65535)]
        stacks.append(
            ReceiveFastPath.build(part, local_mac, local_ip, verify_udp_checksum)
        )
    return stacks
