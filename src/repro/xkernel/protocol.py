"""x-kernel protocol-graph framework.

A slim reimplementation of the x-kernel's [8, 15] organizing abstractions
for the receive-side fast path:

- :class:`Protocol` — a layer in the protocol graph.  On receive it parses
  and strips its header from the :class:`~repro.xkernel.message.Message`,
  *demultiplexes* to an upper protocol or session, and passes the message
  up.
- :class:`Session` — an open communication endpoint holding per-connection
  state (the "stream state" footprint component of the model).  Created by
  a protocol's demux on an active key.
- :class:`ProtocolGraph` — the composed stack with per-layer counters.

Errors on the fast path (bad checksum, unknown demux key, truncated
header) raise :class:`ProtocolError` subclasses, and the per-layer drop
counters record them — matching how protocol implementations account
discard paths.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Dict, Hashable, List

from .message import Message

__all__ = [
    "ProtocolError",
    "DemuxError",
    "ChecksumError",
    "TruncatedHeaderError",
    "LayerStats",
    "Session",
    "Protocol",
    "ProtocolGraph",
]


class ProtocolError(Exception):
    """Base for receive-path processing failures."""


class DemuxError(ProtocolError):
    """No session/upper protocol for the demux key."""


class ChecksumError(ProtocolError):
    """Header or payload checksum verification failed."""


class TruncatedHeaderError(ProtocolError):
    """Message shorter than the layer's header."""


@dataclass
class LayerStats:
    """Per-layer receive counters."""

    delivered: int = 0
    dropped: int = 0
    bytes_in: int = 0

    def record_delivery(self, n_bytes: int) -> None:
        self.delivered += 1
        self.bytes_in += n_bytes

    def record_drop(self) -> None:
        self.dropped += 1


class Session:
    """An open endpoint with per-connection state.

    Subclasses extend :meth:`deliver`; the base maintains the counters
    that constitute the mutable stream state the affinity model tracks.
    """

    def __init__(self, key: Hashable, protocol: "Protocol") -> None:
        self.key = key
        self.protocol = protocol
        self.packets_received = 0
        self.bytes_received = 0
        self.last_payload_len = 0

    def deliver(self, msg: Message) -> None:
        """Consume a message destined for this session."""
        self.packets_received += 1
        n = len(msg)
        self.bytes_received += n
        self.last_payload_len = n


class Protocol(ABC):
    """One layer of the receive-side protocol graph."""

    name: str = "protocol"

    def __init__(self) -> None:
        self.stats = LayerStats()

    @abstractmethod
    def receive(self, msg: Message) -> Session:
        """Process one inbound message: strip header, demux, pass up.

        Returns the terminal :class:`Session` that consumed the message
        (for instrumentation); raises :class:`ProtocolError` on the drop
        path.
        """

    def _delivered(self, n_bytes: int) -> None:
        self.stats.record_delivery(n_bytes)

    def _dropped(self) -> None:
        self.stats.record_drop()


class ProtocolGraph:
    """The composed stack: an ordered list of layers, bottom first."""

    def __init__(self, bottom: Protocol, layers: List[Protocol]) -> None:
        self.bottom = bottom
        self.layers = layers  # includes bottom, for reporting

    def receive(self, frame: bytes, headroom: int = 0) -> Session:
        """Run one raw frame up the stack; returns the consuming session."""
        return self.bottom.receive(Message(frame, headroom=headroom))

    def stats_by_layer(self) -> Dict[str, LayerStats]:
        return {layer.name: layer.stats for layer in self.layers}
