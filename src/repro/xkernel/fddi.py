"""FDDI MAC layer (receive-side fast path).

The paper's platform terminates an FDDI ring; its in-memory driver hands
MAC frames to this layer.  We implement the subset the receive fast path
touches:

- frame control byte (LLC frames: ``0x50``),
- 6-byte destination and source MAC addresses,
- an 802.2 LLC/SNAP header carrying the EtherType (``0x0800`` for IP),

with a maximum frame payload sized so a maximal 4432-byte UDP payload
(the paper's "largest possible FDDI packets, each with 4432 bytes of
data") fits under the FDDI MTU.

The MAC-level FCS is assumed stripped/verified by the adapter (as on real
FDDI hardware), so the host-software path — the thing being modelled —
does not touch it.
"""

from __future__ import annotations

from .message import Message
from .protocol import DemuxError, Protocol, ProtocolError, Session, TruncatedHeaderError

__all__ = [
    "FDDI_HEADER_LEN",
    "FDDI_MTU",
    "ETHERTYPE_IP",
    "LLC_FRAME_CONTROL",
    "FDDIProtocol",
    "encode_fddi_header",
]

#: frame control (1) + dst (6) + src (6) + LLC/SNAP (8) = 21 bytes.
FDDI_HEADER_LEN = 21
#: FDDI maximum frame size is 4500 bytes including MAC overhead; the
#: payload MTU available above the MAC+LLC is 4479 here — comfortably
#: above IP(20) + UDP(8) + 4432 payload = 4460.
FDDI_MTU = 4479
ETHERTYPE_IP = 0x0800
LLC_FRAME_CONTROL = 0x50
_SNAP_LLC = bytes([0xAA, 0xAA, 0x03, 0x00, 0x00, 0x00])  # DSAP,SSAP,CTRL,OUI


def encode_fddi_header(dst_mac: bytes, src_mac: bytes,
                       ethertype: int = ETHERTYPE_IP) -> bytes:
    """Build the 21-byte MAC+LLC/SNAP header."""
    if len(dst_mac) != 6 or len(src_mac) != 6:
        raise ValueError("MAC addresses must be 6 bytes")
    if not (0 <= ethertype <= 0xFFFF):
        raise ValueError("ethertype must fit in 16 bits")
    return (
        bytes([LLC_FRAME_CONTROL])
        + dst_mac
        + src_mac
        + _SNAP_LLC
        + ethertype.to_bytes(2, "big")
    )


class FDDIProtocol(Protocol):
    """FDDI receive processing: address filter + EtherType demux."""

    name = "fddi"

    def __init__(self, local_mac: bytes, accept_broadcast: bool = True) -> None:
        super().__init__()
        if len(local_mac) != 6:
            raise ValueError("local_mac must be 6 bytes")
        self.local_mac = bytes(local_mac)
        self.accept_broadcast = accept_broadcast
        self._upper: dict[int, Protocol] = {}

    def register_upper(self, ethertype: int, protocol: Protocol) -> None:
        """Attach an upper-layer protocol for an EtherType."""
        if not (0 <= ethertype <= 0xFFFF):
            raise ValueError("ethertype must fit in 16 bits")
        self._upper[ethertype] = protocol

    def receive(self, msg: Message) -> Session:
        if len(msg) < FDDI_HEADER_LEN:
            self._dropped()
            raise TruncatedHeaderError(f"frame of {len(msg)} bytes")
        if len(msg) > FDDI_HEADER_LEN + FDDI_MTU:
            self._dropped()
            raise ProtocolError(f"frame exceeds FDDI MTU: {len(msg)}")
        header = msg.pop(FDDI_HEADER_LEN)
        if header[0] != LLC_FRAME_CONTROL:
            self._dropped()
            raise ProtocolError(f"unsupported frame control 0x{header[0]:02x}")
        dst = header[1:7]
        if dst != self.local_mac and not (
            self.accept_broadcast and dst == b"\xff" * 6
        ):
            self._dropped()
            raise DemuxError("frame not addressed to this station")
        # layout: FC[0], dst[1:7], src[7:13], LLC/SNAP[13:19], type[19:21]
        if header[13:19] != _SNAP_LLC:
            self._dropped()
            raise ProtocolError("non-SNAP LLC frame on fast path")
        ethertype = int.from_bytes(header[19:21], "big")
        upper = self._upper.get(ethertype)
        if upper is None:
            self._dropped()
            raise DemuxError(f"no upper protocol for ethertype 0x{ethertype:04x}")
        self._delivered(len(msg))
        return upper.receive(msg)
