"""Simulated x-kernel protocol framework: the UDP/IP/FDDI receive path.

A from-scratch reimplementation of the protocol-processing substrate the
paper instruments: message buffers with header push/pop, a protocol-graph
framework with sessions and demultiplexing, concrete FDDI/IP/UDP layers,
an in-memory FDDI driver (the paper's own technique for out-running a real
attachment), and stack builders for both the shared (Locking) and
replicated (IPS) configurations.
"""

from .checksum import internet_checksum, pseudo_header_checksum, verify_checksum
from .driver import InMemoryFDDIDriver, StreamEndpoint
from .fddi import ETHERTYPE_IP, FDDI_HEADER_LEN, FDDI_MTU, FDDIProtocol, encode_fddi_header
from .ip import IP_HEADER_LEN, IPPROTO_UDP, IPProtocol, encode_ip_header, ip_to_bytes
from .message import Message, MessageError
from .protocol import (
    ChecksumError,
    DemuxError,
    LayerStats,
    Protocol,
    ProtocolError,
    ProtocolGraph,
    Session,
    TruncatedHeaderError,
)
from .send import SendPath, SendSession, TransmitQueue, loopback
from .stack import ReceiveFastPath, build_ips_stacks, build_receive_stack
from .udp import UDP_HEADER_LEN, UDPProtocol, UDPSession, encode_udp_header

__all__ = [
    "ChecksumError",
    "DemuxError",
    "ETHERTYPE_IP",
    "FDDIProtocol",
    "FDDI_HEADER_LEN",
    "FDDI_MTU",
    "IPProtocol",
    "IPPROTO_UDP",
    "IP_HEADER_LEN",
    "InMemoryFDDIDriver",
    "LayerStats",
    "Message",
    "MessageError",
    "Protocol",
    "ProtocolError",
    "ProtocolGraph",
    "ReceiveFastPath",
    "SendPath",
    "SendSession",
    "Session",
    "StreamEndpoint",
    "TransmitQueue",
    "TruncatedHeaderError",
    "UDPProtocol",
    "UDPSession",
    "UDP_HEADER_LEN",
    "build_ips_stacks",
    "build_receive_stack",
    "encode_fddi_header",
    "encode_ip_header",
    "encode_udp_header",
    "internet_checksum",
    "loopback",
    "ip_to_bytes",
    "pseudo_header_checksum",
    "verify_checksum",
]
