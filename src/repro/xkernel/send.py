"""Send-side UDP/IP/FDDI fast path (the paper's extension (i)).

The paper's results cover the receive side; its stated extensions include
"(i) evaluating affinity-based scheduling of send-side UDP/IP/FDDI
processing".  This module provides the send-side substrate: each layer
*pushes* its header onto the message travelling down the graph —

    application payload
      -> UDP header (optional pseudo-header checksum)
      -> IP header (checksummed, fragmented never: fast path only)
      -> FDDI MAC + LLC/SNAP header
      -> transmit queue of the in-memory driver

A :class:`SendPath` bundles the layers and a transmit-capture driver;
:func:`loopback` wires a send path to a receive path so tests and examples
can validate full round trips (what goes down one stack comes up the
other bit-identically).

Affinity-wise the send side is symmetric to the receive side — the same
code/stream/thread footprint components, so the simulator models it with
the same :class:`~repro.core.exec_model.ExecutionTimeModel`; see the E15
ablation experiment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from .checksum import pseudo_header_checksum
from .fddi import ETHERTYPE_IP, FDDI_HEADER_LEN, FDDI_MTU, encode_fddi_header
from .ip import IP_HEADER_LEN, IPPROTO_UDP, encode_ip_header, ip_to_bytes
from .message import Message
from .protocol import ProtocolError
from .udp import UDP_HEADER_LEN, encode_udp_header

__all__ = ["TransmitQueue", "SendSession", "SendPath", "loopback"]

#: Payload ceiling so the frame fits the FDDI MTU.
MAX_SEND_PAYLOAD = FDDI_MTU - IP_HEADER_LEN - UDP_HEADER_LEN


class TransmitQueue:
    """Driver-side capture of outbound frames (the in-memory analogue of a
    transmit ring)."""

    def __init__(self, capacity: int = 0) -> None:
        """``capacity`` of 0 means unbounded; otherwise sends beyond the
        capacity raise (models transmit-ring exhaustion)."""
        if capacity < 0:
            raise ValueError("capacity must be >= 0")
        self.capacity = capacity
        self.frames: List[bytes] = []
        self.bytes_queued = 0

    def enqueue(self, frame: bytes) -> None:
        if self.capacity and len(self.frames) >= self.capacity:
            raise ProtocolError(
                f"transmit queue full ({self.capacity} frames)"
            )
        self.frames.append(frame)
        self.bytes_queued += len(frame)

    def drain(self) -> List[bytes]:
        """Take all queued frames (the 'NIC' transmitting them)."""
        out = self.frames
        self.frames = []
        return out

    def __len__(self) -> int:
        return len(self.frames)


@dataclass
class SendSession:
    """One open outbound UDP flow: fixed 5-tuple, per-send sequence."""

    local_ip: str
    local_port: int
    remote_ip: str
    remote_port: int
    packets_sent: int = 0
    bytes_sent: int = 0
    _next_seq: int = 0

    def stamp_sequence(self, payload: bytes) -> bytes:
        """Prefix the 4-byte application sequence number (the synthetic
        workload convention the receive side checks)."""
        seq = self._next_seq
        self._next_seq = seq + 1
        return seq.to_bytes(4, "big") + payload


class SendPath:
    """The UDP/IP/FDDI encapsulation path for one host."""

    def __init__(
        self,
        local_mac: bytes,
        local_ip: str,
        remote_mac: bytes,
        compute_udp_checksum: bool = True,
        transmit_capacity: int = 0,
    ) -> None:
        if len(local_mac) != 6 or len(remote_mac) != 6:
            raise ValueError("MAC addresses must be 6 bytes")
        self.local_mac = bytes(local_mac)
        self.local_ip = local_ip
        self.local_ip_bytes = ip_to_bytes(local_ip)
        self.remote_mac = bytes(remote_mac)
        self.compute_udp_checksum = compute_udp_checksum
        self.queue = TransmitQueue(transmit_capacity)
        self._sessions: Dict[Tuple[int, str, int], SendSession] = {}
        self._ident = 0

    # ------------------------------------------------------------------
    def open_session(self, local_port: int, remote_ip: str,
                     remote_port: int) -> SendSession:
        """Open (or return) the outbound flow for a 5-tuple."""
        ip_to_bytes(remote_ip)  # validate
        for name, v in (("local_port", local_port), ("remote_port", remote_port)):
            if not (0 <= v <= 0xFFFF):
                raise ValueError(f"{name} must fit in 16 bits")
        key = (local_port, remote_ip, remote_port)
        if key not in self._sessions:
            self._sessions[key] = SendSession(
                local_ip=self.local_ip, local_port=local_port,
                remote_ip=remote_ip, remote_port=remote_port,
            )
        return self._sessions[key]

    @property
    def n_sessions(self) -> int:
        return len(self._sessions)

    # ------------------------------------------------------------------
    def send(self, session: SendSession, payload: bytes,
             stamp_sequence: bool = True) -> bytes:
        """Encapsulate one datagram down the stack; returns the frame.

        The frame is also placed on the transmit queue.  Raises
        :class:`ProtocolError` for payloads that cannot fit the FDDI MTU.
        """
        if stamp_sequence:
            payload = session.stamp_sequence(payload)
        if len(payload) > MAX_SEND_PAYLOAD:
            raise ProtocolError(
                f"payload of {len(payload)} bytes exceeds the "
                f"{MAX_SEND_PAYLOAD}-byte send MTU (no fragmentation on "
                "the fast path)"
            )
        msg = Message(payload, headroom=FDDI_HEADER_LEN + IP_HEADER_LEN
                      + UDP_HEADER_LEN)

        # UDP layer.
        udp_len = UDP_HEADER_LEN + len(payload)
        checksum = 0
        if self.compute_udp_checksum:
            datagram = encode_udp_header(
                session.local_port, session.remote_port, len(payload), 0
            ) + payload
            checksum = pseudo_header_checksum(
                self.local_ip_bytes, ip_to_bytes(session.remote_ip),
                IPPROTO_UDP, udp_len, datagram,
            )
            if checksum == 0:
                checksum = 0xFFFF  # RFC 768: 0 on the wire means "none"
        msg.push(encode_udp_header(session.local_port, session.remote_port,
                                   len(payload), checksum))

        # IP layer.
        self._ident = (self._ident + 1) & 0xFFFF
        msg.push(encode_ip_header(
            self.local_ip_bytes, ip_to_bytes(session.remote_ip),
            payload_len=len(msg), ident=self._ident,
        ))

        # FDDI MAC layer.
        msg.push(encode_fddi_header(self.remote_mac, self.local_mac,
                                    ETHERTYPE_IP))

        frame = bytes(msg)
        self.queue.enqueue(frame)
        session.packets_sent += 1
        session.bytes_sent += len(payload)
        return frame


def loopback(send_path: SendPath, receive_fast_path) -> int:
    """Transmit every queued frame into a receive stack; returns count.

    The receive stack must be addressed as the send path's remote (same
    MAC the frames carry, matching IP/ports).  Raises on any receive-side
    drop — a loopback must be lossless.
    """
    frames = send_path.queue.drain()
    for frame in frames:
        receive_fast_path.graph.receive(frame)
    return len(frames)
