"""Internet checksum (RFC 1071), vectorized.

The 16-bit one's-complement sum used by IP headers and (optionally) UDP.
Implemented over NumPy for the data-touching benchmarks: summing 16-bit
big-endian words with end-around carry folding, vectorized so the per-byte
cost profile mirrors a tuned C implementation's (linear in size, no Python
per-byte loop).
"""

from __future__ import annotations

import numpy as np

__all__ = ["internet_checksum", "verify_checksum", "pseudo_header_checksum"]


def _ones_complement_sum(data: bytes) -> int:
    """One's-complement 16-bit sum of a byte string (big-endian words)."""
    buf = np.frombuffer(data, dtype=np.uint8)
    if len(buf) % 2:
        buf = np.concatenate([buf, np.zeros(1, dtype=np.uint8)])
    # Big-endian 16-bit words: high byte first.
    words = buf.reshape(-1, 2).astype(np.uint32)
    total = int((words[:, 0] << 8).sum() + words[:, 1].sum())
    # Fold carries until the sum fits in 16 bits.
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return total


def internet_checksum(data: bytes) -> int:
    """RFC 1071 checksum: complement of the one's-complement sum."""
    return (~_ones_complement_sum(data)) & 0xFFFF


def verify_checksum(data: bytes) -> bool:
    """True iff ``data`` (including its embedded checksum field) verifies.

    A correct RFC 1071 packet sums (with the checksum field in place) to
    ``0xFFFF``, so the complement is zero.
    """
    return internet_checksum(data) == 0


def pseudo_header_checksum(src_ip: bytes, dst_ip: bytes, protocol: int,
                           length: int, payload: bytes) -> int:
    """UDP/TCP checksum over the IPv4 pseudo header plus payload."""
    if len(src_ip) != 4 or len(dst_ip) != 4:
        raise ValueError("src_ip and dst_ip must be 4-byte IPv4 addresses")
    if not (0 <= protocol <= 0xFF):
        raise ValueError("protocol must fit in one byte")
    if not (0 <= length <= 0xFFFF):
        raise ValueError("length must fit in 16 bits")
    pseudo = src_ip + dst_ip + bytes([0, protocol]) + length.to_bytes(2, "big")
    return internet_checksum(pseudo + payload)
