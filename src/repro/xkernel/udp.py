"""UDP layer (receive-side fast path) with per-port sessions.

The paper parallelizes "the receive-side fast-path of the x-kernel's
UDP/IP/FDDI protocol stack".  This UDP layer validates the 8-byte header,
optionally verifies the pseudo-header checksum (a data-touching operation,
off by default to match the paper's no-data-touching results), and
demultiplexes on destination port to a :class:`UDPSession` whose mutable
counters are the "stream state" the affinity model tracks.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from .checksum import pseudo_header_checksum
from .message import Message
from .protocol import (
    ChecksumError,
    DemuxError,
    Protocol,
    ProtocolError,
    Session,
    TruncatedHeaderError,
)

__all__ = ["UDP_HEADER_LEN", "UDPSession", "UDPProtocol", "encode_udp_header"]

UDP_HEADER_LEN = 8


def encode_udp_header(src_port: int, dst_port: int, payload_len: int,
                      checksum: int = 0) -> bytes:
    """Build the 8-byte UDP header (checksum 0 = not computed)."""
    for name, v in (("src_port", src_port), ("dst_port", dst_port)):
        if not (0 <= v <= 0xFFFF):
            raise ValueError(f"{name} must fit in 16 bits")
    length = UDP_HEADER_LEN + payload_len
    if length > 0xFFFF:
        raise ValueError(f"UDP datagram too large: {length}")
    return (
        src_port.to_bytes(2, "big")
        + dst_port.to_bytes(2, "big")
        + length.to_bytes(2, "big")
        + checksum.to_bytes(2, "big")
    )


class UDPSession(Session):
    """One bound UDP port; per-connection mutable state."""

    def __init__(self, port: int, protocol: "UDPProtocol",
                 callback: Optional[Callable[[bytes], None]] = None) -> None:
        super().__init__(key=port, protocol=protocol)
        self.port = port
        self.callback = callback
        self.last_src_port: Optional[int] = None
        self.out_of_order = 0
        self._expected_seq: Optional[int] = None

    def deliver(self, msg: Message) -> None:
        """Account the datagram; track an application-level sequence
        number when the payload carries one (first 4 bytes, big-endian) —
        the synthetic-workload convention of the in-memory driver."""
        super().deliver(msg)
        if len(msg) >= 4:
            seq = int.from_bytes(msg.peek(4), "big")
            if self._expected_seq is not None and seq != self._expected_seq:
                self.out_of_order += 1
            self._expected_seq = seq + 1
        if self.callback is not None:
            self.callback(bytes(msg))


class UDPProtocol(Protocol):
    """UDP receive fast path with destination-port demux."""

    name = "udp"

    def __init__(self, local_ip: bytes, verify_payload_checksum: bool = False) -> None:
        super().__init__()
        if len(local_ip) != 4:
            raise ValueError("local_ip must be 4 bytes")
        self.local_ip = bytes(local_ip)
        self.verify_payload_checksum = verify_payload_checksum
        self._sessions: Dict[int, UDPSession] = {}

    # ------------------------------------------------------------------
    def open_session(self, port: int,
                     callback: Optional[Callable[[bytes], None]] = None) -> UDPSession:
        """Bind a port; returns the session (idempotent per port)."""
        if not (0 <= port <= 0xFFFF):
            raise ValueError("port must fit in 16 bits")
        if port in self._sessions:
            raise ValueError(f"port {port} already bound")
        session = UDPSession(port, self, callback)
        self._sessions[port] = session
        return session

    def close_session(self, port: int) -> None:
        if port not in self._sessions:
            raise KeyError(f"port {port} is not bound")
        del self._sessions[port]

    def session(self, port: int) -> UDPSession:
        return self._sessions[port]

    @property
    def n_sessions(self) -> int:
        return len(self._sessions)

    # ------------------------------------------------------------------
    def receive(self, msg: Message) -> Session:
        """Receive without pseudo-header context (checksum unverifiable)."""
        return self.receive_from(msg, src_ip=None)

    def receive_from(self, msg: Message, src_ip: Optional[bytes]) -> Session:
        """Receive with the IP source address for checksum verification."""
        if len(msg) < UDP_HEADER_LEN:
            self._dropped()
            raise TruncatedHeaderError(f"UDP datagram of {len(msg)} bytes")
        header = msg.peek(UDP_HEADER_LEN)
        src_port = int.from_bytes(header[0:2], "big")
        dst_port = int.from_bytes(header[2:4], "big")
        length = int.from_bytes(header[4:6], "big")
        checksum = int.from_bytes(header[6:8], "big")
        if length < UDP_HEADER_LEN or length > len(msg):
            self._dropped()
            raise ProtocolError(
                f"UDP length {length} inconsistent with datagram ({len(msg)})"
            )
        session = self._sessions.get(dst_port)
        if session is None:
            self._dropped()
            raise DemuxError(f"no session bound to port {dst_port}")
        if self.verify_payload_checksum and checksum != 0:
            if src_ip is None:
                self._dropped()
                raise ProtocolError(
                    "checksum verification requires the IP source address "
                    "(deliver via receive_from)"
                )
            # The transmitted checksum field participates in the sum; a
            # valid datagram's pseudo-header checksum (field in place)
            # computes to 0.
            datagram = msg.peek(length)
            if pseudo_header_checksum(src_ip, self.local_ip, 17, length,
                                      datagram) != 0:
                self._dropped()
                raise ChecksumError("UDP checksum mismatch")
        msg.pop(UDP_HEADER_LEN)
        msg.truncate(length - UDP_HEADER_LEN)
        session.last_src_port = src_port
        self._delivered(len(msg))
        session.deliver(msg)
        return session
