"""IPv4 layer (receive-side fast path).

Implements the checks the x-kernel's IP receive fast path performs on an
unfragmented datagram: version/IHL validation, header checksum, total
length consistency, fragment rejection (slow path, not modelled), TTL
sanity, local-address filter, and protocol demux (UDP on the fast path).

Header layout (20 bytes, no options on the fast path)::

    0: version(4) | IHL(4)        1: TOS
    2-3: total length             4-5: identification
    6-7: flags(3) | frag offset   8: TTL       9: protocol
    10-11: header checksum        12-15: src   16-19: dst
"""

from __future__ import annotations

import struct
from typing import Dict

from .checksum import internet_checksum, verify_checksum
from .message import Message
from .protocol import (
    ChecksumError,
    DemuxError,
    Protocol,
    ProtocolError,
    Session,
    TruncatedHeaderError,
)

__all__ = [
    "IP_HEADER_LEN",
    "IPPROTO_UDP",
    "IPProtocol",
    "encode_ip_header",
    "ip_to_bytes",
]

IP_HEADER_LEN = 20
IPPROTO_UDP = 17
_HDR = struct.Struct("!BBHHHBBH4s4s")


def ip_to_bytes(dotted: str) -> bytes:
    """``"10.0.0.1"`` -> 4 raw bytes."""
    parts = dotted.split(".")
    if len(parts) != 4:
        raise ValueError(f"not an IPv4 address: {dotted!r}")
    values = [int(p) for p in parts]
    if any(not (0 <= v <= 255) for v in values):
        raise ValueError(f"octet out of range in {dotted!r}")
    return bytes(values)


def encode_ip_header(src: bytes, dst: bytes, payload_len: int,
                     protocol: int = IPPROTO_UDP, ttl: int = 64,
                     ident: int = 0) -> bytes:
    """Build a checksummed 20-byte IPv4 header."""
    if len(src) != 4 or len(dst) != 4:
        raise ValueError("src/dst must be 4-byte addresses")
    total_len = IP_HEADER_LEN + payload_len
    if total_len > 0xFFFF:
        raise ValueError(f"datagram too large: {total_len}")
    raw = _HDR.pack(0x45, 0, total_len, ident, 0, ttl, protocol, 0, src, dst)
    csum = internet_checksum(raw)
    return raw[:10] + csum.to_bytes(2, "big") + raw[12:]


class IPProtocol(Protocol):
    """IPv4 receive fast path."""

    name = "ip"

    def __init__(self, local_ip: bytes, verify_header_checksum: bool = True) -> None:
        super().__init__()
        if len(local_ip) != 4:
            raise ValueError("local_ip must be 4 bytes")
        self.local_ip = bytes(local_ip)
        self.verify_header_checksum = verify_header_checksum
        self._upper: Dict[int, Protocol] = {}

    def register_upper(self, ip_protocol: int, protocol: Protocol) -> None:
        if not (0 <= ip_protocol <= 0xFF):
            raise ValueError("ip protocol number must fit one byte")
        self._upper[ip_protocol] = protocol

    def receive(self, msg: Message) -> Session:
        if len(msg) < IP_HEADER_LEN:
            self._dropped()
            raise TruncatedHeaderError(f"IP datagram of {len(msg)} bytes")
        header = msg.peek(IP_HEADER_LEN)
        version_ihl = header[0]
        if version_ihl != 0x45:
            self._dropped()
            raise ProtocolError(
                f"fast path handles version 4 / IHL 5 only, got 0x{version_ihl:02x}"
            )
        if self.verify_header_checksum and not verify_checksum(header):
            self._dropped()
            raise ChecksumError("IP header checksum mismatch")
        total_len = int.from_bytes(header[2:4], "big")
        if total_len < IP_HEADER_LEN or total_len > len(msg):
            self._dropped()
            raise ProtocolError(
                f"IP total length {total_len} inconsistent with frame ({len(msg)})"
            )
        flags_frag = int.from_bytes(header[6:8], "big")
        if flags_frag & 0x3FFF:  # fragment offset or MF bit
            self._dropped()
            raise ProtocolError("fragmented datagram (slow path, unsupported)")
        if header[8] == 0:
            self._dropped()
            raise ProtocolError("TTL expired")
        if header[16:20] != self.local_ip:
            self._dropped()
            raise DemuxError("datagram not addressed to this host")
        upper = self._upper.get(header[9])
        if upper is None:
            self._dropped()
            raise DemuxError(f"no upper protocol for IP proto {header[9]}")
        msg.pop(IP_HEADER_LEN)
        msg.truncate(total_len - IP_HEADER_LEN)  # strip any link padding
        self._delivered(len(msg))
        receive_from = getattr(upper, "receive_from", None)
        if receive_from is not None:
            return receive_from(msg, src_ip=header[12:16])
        return upper.receive(msg)
