"""x-kernel style message buffers.

The x-kernel [8, 15] threads a *message* object through the protocol
graph; each layer strips (pops) its header on the receive path and
prepends (pushes) one on the send path.  This implementation keeps the
payload in a single ``bytearray`` with headroom so pushes and pops are
O(header) and never copy the payload — the same design motivation as the
original's directed-acyclic message structure, scaled down to what the
fast path needs.
"""

from __future__ import annotations

__all__ = ["Message", "MessageError"]


class MessageError(ValueError):
    """Malformed message operation (under/overflow)."""


class Message:
    """A network message with cheap header push/pop.

    Parameters
    ----------
    payload:
        Initial contents (the innermost payload on the send path, or the
        full frame on the receive path).
    headroom:
        Bytes reserved in front for future pushes without reallocation.
    """

    __slots__ = ("_buf", "_head", "_tail")

    def __init__(self, payload: bytes = b"", headroom: int = 64) -> None:
        if headroom < 0:
            raise MessageError("headroom must be non-negative")
        self._buf = bytearray(headroom) + bytearray(payload)
        self._head = headroom
        self._tail = len(self._buf)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._tail - self._head

    def __bytes__(self) -> bytes:
        return bytes(self._buf[self._head : self._tail])

    @property
    def data(self) -> memoryview:
        """Zero-copy view of the current contents."""
        return memoryview(self._buf)[self._head : self._tail]

    # ------------------------------------------------------------------
    def push(self, header: bytes) -> None:
        """Prepend a header (send path / encapsulation)."""
        n = len(header)
        if n > self._head:
            # Grow headroom geometrically; rare in steady state.
            grow = max(n - self._head, len(self._buf), 64)
            self._buf = bytearray(grow) + self._buf
            self._head += grow
            self._tail += grow
        self._head -= n
        self._buf[self._head : self._head + n] = header

    def pop(self, n: int) -> bytes:
        """Strip and return ``n`` bytes from the front (receive path)."""
        if n < 0:
            raise MessageError("cannot pop a negative count")
        if n > len(self):
            raise MessageError(f"pop of {n} bytes from a {len(self)}-byte message")
        out = bytes(self._buf[self._head : self._head + n])
        self._head += n
        return out

    def peek(self, n: int) -> bytes:
        """Return the first ``n`` bytes without consuming them."""
        if n < 0 or n > len(self):
            raise MessageError(f"peek of {n} bytes from a {len(self)}-byte message")
        return bytes(self._buf[self._head : self._head + n])

    def truncate(self, length: int) -> None:
        """Drop trailing bytes beyond ``length`` (e.g. strip a trailer)."""
        if length < 0 or length > len(self):
            raise MessageError(f"truncate to {length} of {len(self)} bytes")
        self._tail = self._head + length

    def clone(self) -> "Message":
        """Independent copy (for fan-out delivery)."""
        m = Message.__new__(Message)
        m._buf = bytearray(self._buf)
        m._head = self._head
        m._tail = self._tail
        return m
