"""In-memory FDDI driver.

The paper: "We developed in-memory drivers (a technique also used in
[13, 21]), since the Challenge's eight 100 MHz R4400 processors are
together much faster than the single FDDI network attachment on our
machine.  Data is not received from the actual FDDI network."

This driver synthesizes complete, valid FDDI/IP/UDP frames for a set of
simulated streams and hands them to the stack — the receive-side analogue
of a network interface, without a network.  Each stream is a (source IP,
source port, destination port) triple; payloads carry a 4-byte sequence
number so sessions can detect reordering, followed by filler bytes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List

from .checksum import pseudo_header_checksum
from .fddi import ETHERTYPE_IP, encode_fddi_header
from .ip import encode_ip_header, ip_to_bytes
from .udp import UDP_HEADER_LEN, encode_udp_header

__all__ = ["StreamEndpoint", "InMemoryFDDIDriver"]


@dataclass(frozen=True)
class StreamEndpoint:
    """Identity of one simulated traffic stream."""

    src_ip: str
    src_port: int
    dst_port: int

    def __post_init__(self) -> None:
        ip_to_bytes(self.src_ip)  # validates
        for name in ("src_port", "dst_port"):
            v = getattr(self, name)
            if not (0 <= v <= 0xFFFF):
                raise ValueError(f"{name} must fit in 16 bits")


class InMemoryFDDIDriver:
    """Synthesizes inbound frames for a set of streams.

    Parameters
    ----------
    local_mac / local_ip:
        The receiving host's addresses (frames are addressed to them).
    streams:
        Stream endpoints; frame generation is per-stream with independent
        sequence numbers.
    compute_udp_checksum:
        Fill in a correct UDP checksum (needed when the stack verifies
        payload checksums; costs frame-build time, off by default).
    """

    def __init__(
        self,
        local_mac: bytes,
        local_ip: str,
        streams: List[StreamEndpoint],
        compute_udp_checksum: bool = False,
    ) -> None:
        if len(local_mac) != 6:
            raise ValueError("local_mac must be 6 bytes")
        if not streams:
            raise ValueError("need at least one stream")
        ports = [s.dst_port for s in streams]
        self.local_mac = bytes(local_mac)
        self.local_ip = local_ip
        self.local_ip_bytes = ip_to_bytes(local_ip)
        self.streams = list(streams)
        self.compute_udp_checksum = compute_udp_checksum
        self._seq: List[int] = [0] * len(streams)
        self._ident = 0
        # Source MACs derived deterministically from the stream index.
        self._src_macs = [
            bytes([0x02, 0x00, 0x00, 0x00, (i >> 8) & 0xFF, i & 0xFF])
            for i in range(len(streams))
        ]

    @property
    def n_streams(self) -> int:
        return len(self.streams)

    def next_frame(self, stream_index: int, payload_bytes: int = 64) -> bytes:
        """Build the next frame for a stream (sequence number advances)."""
        if not (0 <= stream_index < len(self.streams)):
            raise IndexError(f"stream index {stream_index} out of range")
        if payload_bytes < 4:
            raise ValueError("payload must hold the 4-byte sequence number")
        ep = self.streams[stream_index]
        seq = self._seq[stream_index]
        self._seq[stream_index] = seq + 1
        payload = seq.to_bytes(4, "big") + bytes((payload_bytes - 4) * [0xA5])

        udp_len = UDP_HEADER_LEN + len(payload)
        checksum = 0
        if self.compute_udp_checksum:
            src = ip_to_bytes(ep.src_ip)
            datagram = encode_udp_header(ep.src_port, ep.dst_port,
                                         len(payload), 0) + payload
            checksum = pseudo_header_checksum(
                src, self.local_ip_bytes, 17, udp_len, datagram
            )
            if checksum == 0:
                checksum = 0xFFFF  # RFC 768: transmitted 0 means "none"
        udp = encode_udp_header(ep.src_port, ep.dst_port, len(payload), checksum)

        self._ident = (self._ident + 1) & 0xFFFF
        ip = encode_ip_header(
            ip_to_bytes(ep.src_ip), self.local_ip_bytes,
            payload_len=udp_len, ident=self._ident,
        )
        mac = encode_fddi_header(self.local_mac, self._src_macs[stream_index],
                                 ETHERTYPE_IP)
        return mac + ip + udp + payload

    def frames(self, schedule: Iterator[int], payload_bytes: int = 64) -> Iterator[bytes]:
        """Frames following a stream-index schedule (e.g. round robin)."""
        for idx in schedule:
            yield self.next_frame(idx, payload_bytes)

    def round_robin(self, n_frames: int, payload_bytes: int = 64) -> List[bytes]:
        """Convenience: ``n_frames`` frames cycling through the streams."""
        return [
            self.next_frame(i % self.n_streams, payload_bytes)
            for i in range(n_frames)
        ]
