"""Output analysis: queueing validation formulas, statistics, tables."""

from .mg1 import (
    erlang_c,
    md1_mean_delay,
    mg1_mean_delay,
    mm1_mean_delay,
    mmc_mean_delay,
)
from .plot import ascii_plot, sparkline
from .predictor import AnalyticPredictor, DelayPrediction
from .replications import PairedComparison, ReplicatedResult, paired_comparison, replicate
from .stats import (
    batch_means,
    batch_means_ci,
    relative_half_width,
    suggest_warmup_index,
    welch_moving_average,
)
from .tables import format_kv, format_series, format_table

__all__ = [
    "AnalyticPredictor",
    "DelayPrediction",
    "PairedComparison",
    "ReplicatedResult",
    "ascii_plot",
    "batch_means",
    "batch_means_ci",
    "erlang_c",
    "format_kv",
    "format_series",
    "format_table",
    "md1_mean_delay",
    "mg1_mean_delay",
    "mm1_mean_delay",
    "mmc_mean_delay",
    "paired_comparison",
    "replicate",
    "relative_half_width",
    "suggest_warmup_index",
    "sparkline",
    "welch_moving_average",
]
