"""Output analysis for the simulation: batch means, CIs, transient removal.

Standard discrete-event output-analysis techniques of the paper's era:

- **non-overlapping batch means** for confidence intervals on steady-state
  means from a single long run (autocorrelated observations),
- **Welch's graphical procedure** for choosing a warm-up truncation point,
- relative-precision helpers used by experiments to decide run lengths.
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np
from scipy import stats as sps

__all__ = [
    "batch_means_ci",
    "batch_means",
    "welch_moving_average",
    "suggest_warmup_index",
    "relative_half_width",
]


def batch_means(observations: np.ndarray, n_batches: int = 20) -> np.ndarray:
    """Means of ``n_batches`` equal, non-overlapping, consecutive batches.

    A trailing remainder (when the sample size is not divisible) is
    dropped, per standard practice.  When the series is shorter than
    ``n_batches`` the batch count is clamped to the series length
    (one-observation batches) so short tails of a sweep still produce a
    usable — if weak — estimate; at least 2 observations are required to
    form 2 batches.
    """
    obs = np.asarray(observations, dtype=np.float64)
    if n_batches < 2:
        raise ValueError("need at least 2 batches")
    n_batches = min(n_batches, len(obs))
    if n_batches < 2:
        raise ValueError(
            f"too few observations ({len(obs)}) to form 2 batches"
        )
    batch_size = len(obs) // n_batches
    usable = batch_size * n_batches
    return obs[:usable].reshape(n_batches, batch_size).mean(axis=1)


def batch_means_ci(
    observations: np.ndarray,
    n_batches: int = 20,
    confidence: float = 0.95,
) -> Tuple[float, float]:
    """Two-sided CI for the steady-state mean via batch means.

    Treats the batch means as approximately i.i.d. normal (valid once
    batches are long relative to the autocorrelation time) and applies the
    Student-t interval.  Returns ``(lo, hi)``.

    The result is always a *finite* interval — degenerate inputs degrade
    gracefully instead of producing NaN (callers compare and plot CIs
    without special-casing):

    - fewer than ``2 * n_batches`` observations fall back to a plain
      t-interval on the raw observations;
    - a single observation yields the zero-width interval ``(v, v)``;
    - non-finite observations (inf from saturated runs, NaN from empty
      summaries) are dropped before estimation;
    - no finite observations at all yields ``(0.0, 0.0)``.
    """
    obs = np.asarray(observations, dtype=np.float64)
    obs = obs[np.isfinite(obs)]
    if len(obs) == 0:
        return (0.0, 0.0)
    if len(obs) == 1:
        return (float(obs[0]), float(obs[0]))
    if len(obs) < 2 * n_batches:
        sample = obs
    else:
        sample = batch_means(obs, n_batches)
    mean = float(sample.mean())
    sem = float(sample.std(ddof=1) / math.sqrt(len(sample)))
    if sem == 0.0:
        return (mean, mean)
    t = float(sps.t.ppf(0.5 + confidence / 2.0, df=len(sample) - 1))
    return (mean - t * sem, mean + t * sem)


def relative_half_width(observations: np.ndarray, n_batches: int = 20,
                        confidence: float = 0.95) -> float:
    """CI half-width divided by the mean (the usual stopping criterion).

    Returns ``inf`` — never NaN — for series where the criterion is
    meaningless: empty input, zero or non-finite mean, or a non-finite
    interval.
    """
    obs = np.asarray(observations, dtype=np.float64)
    if len(obs) == 0:
        return math.inf
    lo, hi = batch_means_ci(obs, n_batches=n_batches, confidence=confidence)
    mean = float(obs.mean())
    if mean == 0.0 or not math.isfinite(mean) or not math.isfinite(hi - lo):
        return math.inf
    return (hi - lo) / 2.0 / abs(mean)


def welch_moving_average(observations: np.ndarray, window: int = 5) -> np.ndarray:
    """Welch's moving average for warm-up identification.

    Centered moving average with shrinking windows near the start, exactly
    as in Welch's procedure (Law & Kelton §9.5.1): for index ``i < window``
    the window is ``2i+1`` points; beyond that, ``2*window+1`` points.
    """
    obs = np.asarray(observations, dtype=np.float64)
    if window < 1:
        raise ValueError("window must be >= 1")
    n = len(obs)
    out = np.empty(n)
    for i in range(n):
        w = min(window, i, n - 1 - i)
        out[i] = obs[i - w : i + w + 1].mean()
    return out


def suggest_warmup_index(observations: np.ndarray, window: int = 25,
                         tolerance: float = 0.05) -> int:
    """Heuristic warm-up truncation point from Welch's curve.

    Returns the first index where the smoothed curve stays within
    ``tolerance`` (relative) of the mean of its final quarter for the rest
    of the series.  Falls back to ``len/10`` when no such index exists.
    """
    obs = np.asarray(observations, dtype=np.float64)
    if len(obs) < 10:
        return 0
    smooth = welch_moving_average(obs, window=min(window, len(obs) // 4))
    tail_mean = smooth[-max(1, len(smooth) // 4):].mean()
    if tail_mean == 0.0:
        return 0
    within = np.abs(smooth - tail_mean) <= tolerance * abs(tail_mean)
    # First index from which the curve never leaves the band again.
    outside = np.where(~within)[0]
    if len(outside) == 0:
        return 0
    idx = int(outside[-1]) + 1
    if idx >= len(obs):
        return len(obs) // 10
    return idx
