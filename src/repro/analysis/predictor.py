"""Analytic steady-state delay predictor.

A closed-form companion to the discrete-event simulator, in the spirit of
the queueing-theoretic treatments the paper builds on (Squillante &
Lazowska [24]): predict the mean packet delay for a configuration without
simulating it.  Used to cross-check the simulator (tests assert agreement
at moderate loads) and for quick capacity estimates in the experiments.

The service-time model is the same :class:`ExecutionTimeModel`; the
queueing abstraction depends on the policy's structure:

- **wired policies** (Locking Wired-Streams, IPS-wired): each processor /
  stack is an independent M/D/1 queue at rate ``lambda/N``.  The cache
  state seen by a packet follows from the processor's *idle gap*: a
  fixed-point iteration solves service time against utilization (longer
  service -> higher utilization -> shorter idle gaps -> less displacement
  -> shorter service).
- **shared-queue policies** (FCFS baseline, MRU): one M/D/c queue.  For
  the unaffinitized baseline the stream/thread components are cold with
  probability ``(N-1)/N`` (the packet lands on a processor its stream
  never/last visited); for MRU the model assumes the busy-processor set
  concentrates and stream state survives with the complementary
  probability.

Approximations are deliberate and documented; the simulator remains the
ground truth.  Accuracy is typically within ~10-15 % of simulation at
utilizations below ~0.8 (see tests/analysis/test_predictor.py).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from ..core.exec_model import COLD, ComponentState, ExecutionTimeModel
from ..core.params import (
    PAPER_COMPOSITION,
    PAPER_COSTS,
    FootprintComposition,
    PlatformConfig,
    ProtocolCosts,
)
from .mg1 import md1_mean_delay, mmc_mean_delay

__all__ = ["DelayPrediction", "AnalyticPredictor"]


@dataclass(frozen=True)
class DelayPrediction:
    """Predicted steady-state behaviour of one configuration."""

    service_us: float
    mean_delay_us: float
    utilization: float
    stable: bool
    queue_structure: str  # "M/D/1 per processor" or "M/D/c shared"

    @property
    def queueing_us(self) -> float:
        return self.mean_delay_us - self.service_us if self.stable else math.inf


class AnalyticPredictor:
    """Predict mean delay for the main policy families.

    Parameters mirror :class:`repro.sim.SystemConfig`; construct once per
    platform/cost set and query many operating points.
    """

    SUPPORTED = ("fcfs", "mru", "wired-streams", "ips-wired")

    def __init__(
        self,
        platform: Optional[PlatformConfig] = None,
        costs: ProtocolCosts = PAPER_COSTS,
        composition: FootprintComposition = PAPER_COMPOSITION,
    ) -> None:
        self.platform = platform or PlatformConfig()
        self.costs = costs
        self.composition = composition
        self.model = ExecutionTimeModel(costs, composition,
                                        self.platform.hierarchy)

    # ------------------------------------------------------------------
    def predict(self, policy: str, total_rate_pps: float, n_streams: int,
                intensity: float = 1.0) -> DelayPrediction:
        """Predict mean packet delay for a policy at an operating point."""
        if policy not in self.SUPPORTED:
            raise ValueError(
                f"predictor supports {self.SUPPORTED}, got {policy!r}"
            )
        if total_rate_pps <= 0:
            raise ValueError("total_rate_pps must be positive")
        if n_streams < 1:
            raise ValueError("n_streams must be >= 1")
        if policy in ("wired-streams", "ips-wired"):
            return self._predict_wired(policy, total_rate_pps, n_streams,
                                       intensity)
        return self._predict_shared(policy, total_rate_pps, n_streams,
                                    intensity)

    # ------------------------------------------------------------------
    # Wired family: independent per-processor M/D/1 queues
    # ------------------------------------------------------------------
    def _wired_service_us(self, policy: str, per_proc_rate_pps: float,
                          streams_per_proc: float,
                          intensity: float) -> float:
        """Fixed point: service time vs displacement from idle gaps."""
        locking = policy == "wired-streams"
        rate_per_us = per_proc_rate_pps * 1e-6
        refs_per_us = self.platform.references_per_us
        service = self.costs.t_warm_us + self.costs.dispatch_us
        for _ in range(60):
            # Mean idle gap between consecutive services on the processor.
            gap_us = max(0.0, 1.0 / rate_per_us - service)
            idle_refs = gap_us * refs_per_us * intensity
            # Code+globals were touched one service ago; per-stream state
            # was last touched streams_per_proc services ago (round-robin
            # through the processor's wired streams), with the intervening
            # protocol executions displacing at the full rate.
            per_visit_refs = idle_refs + service * refs_per_us
            stream_refs = streams_per_proc * per_visit_refs - service * refs_per_us
            state = ComponentState(
                code_refs=idle_refs,
                stream_refs=max(0.0, stream_refs),
                thread_refs=idle_refs,
                # Under Locking, other processors complete packets between
                # our visits whenever the system has more than one active
                # processor.
                shared_invalidated=locking and self.platform.n_processors > 1,
            )
            new_service = self.model.execution_time_us(state, locking=locking)
            if abs(new_service - service) < 1e-9:
                service = new_service
                break
            service = new_service
        return service

    def _predict_wired(self, policy: str, total_rate_pps: float,
                       n_streams: int, intensity: float) -> DelayPrediction:
        n = self.platform.n_processors
        servers = min(n, n_streams) if policy == "wired-streams" else min(
            n, self.platform.n_processors
        )
        per_server_rate = total_rate_pps / servers
        streams_per_server = max(1.0, n_streams / servers)
        service = self._wired_service_us(policy, per_server_rate,
                                         streams_per_server, intensity)
        rate_per_us = per_server_rate * 1e-6
        rho = rate_per_us * service
        if rho >= 1.0:
            return DelayPrediction(service, math.inf, rho, False,
                                   "M/D/1 per processor")
        delay_us = md1_mean_delay(rate_per_us, service)
        return DelayPrediction(service, delay_us, rho, True,
                               "M/D/1 per processor")

    # ------------------------------------------------------------------
    # Shared-queue family: one M/D/c queue
    # ------------------------------------------------------------------
    def _predict_shared(self, policy: str, total_rate_pps: float,
                        n_streams: int, intensity: float) -> DelayPrediction:
        n = self.platform.n_processors
        refs_per_us = self.platform.references_per_us
        rate_per_us = total_rate_pps * 1e-6
        service = self.costs.t_warm_us + self.costs.dispatch_us
        for _ in range(60):
            rho = min(0.999, rate_per_us * service / n)
            if policy == "fcfs":
                # Packets land uniformly: stream/thread state cold w.p.
                # (n-1)/n; code last ran on this processor one system
                # "round" ago (n/lambda between protocol visits per CPU).
                p_cold = (n - 1) / n
                visit_gap_us = n / rate_per_us - service
                idle_refs = max(0.0, visit_gap_us) * refs_per_us * intensity
                warm_state = ComponentState(
                    code_refs=idle_refs,
                    stream_refs=n_streams * max(0.0, idle_refs),
                    thread_refs=idle_refs,
                    shared_invalidated=n > 1,
                )
                cold_state = ComponentState(
                    code_refs=idle_refs,
                    stream_refs=COLD,
                    thread_refs=COLD,
                    shared_invalidated=n > 1,
                )
                new_service = (
                    p_cold * self.model.execution_time_us(cold_state, locking=True)
                    + (1 - p_cold) * self.model.execution_time_us(warm_state,
                                                                  locking=True)
                )
            else:  # mru
                # MRU concentrates on ~ceil(rho * n) busy processors; a
                # stream revisits one of them, cold w.p. (k-1)/k.
                k = max(1.0, math.ceil(rho * n))
                p_cold = (k - 1.0) / k
                gap_us = max(0.0, k / rate_per_us - service)
                idle_refs = gap_us * refs_per_us * intensity
                stream_gap_refs = (
                    (n_streams / k) * (idle_refs + service * refs_per_us)
                )
                warm_state = ComponentState(
                    code_refs=idle_refs,
                    stream_refs=stream_gap_refs,
                    thread_refs=idle_refs,
                    shared_invalidated=k > 1,
                )
                cold_state = ComponentState(
                    code_refs=idle_refs,
                    stream_refs=COLD,
                    thread_refs=COLD,
                    shared_invalidated=k > 1,
                )
                new_service = (
                    p_cold * self.model.execution_time_us(cold_state, locking=True)
                    + (1 - p_cold) * self.model.execution_time_us(warm_state,
                                                                  locking=True)
                )
            if abs(new_service - service) < 1e-9:
                service = new_service
                break
            service = new_service
        rho = rate_per_us * service / n
        if rho >= 1.0:
            return DelayPrediction(service, math.inf, rho, False,
                                   "M/D/c shared")
        # M/M/c with the deterministic-service half-wait correction
        # (M/D/c ~ M/M/c with half the queueing delay).
        mmc = mmc_mean_delay(rate_per_us, 1.0 / service, n)
        delay_us = service + 0.5 * (mmc - 1.0 / (1.0 / service))
        return DelayPrediction(service, delay_us, rho, True, "M/D/c shared")

    # ------------------------------------------------------------------
    def capacity_pps(self, policy: str, n_streams: int,
                     intensity: float = 1.0) -> float:
        """Predicted maximum sustainable aggregate rate (bisection on the
        predicted utilization)."""
        lo, hi = 100.0, 1e6
        for _ in range(50):
            mid = 0.5 * (lo + hi)
            if self.predict(policy, mid, n_streams, intensity).stable:
                lo = mid
            else:
                hi = mid
        return lo
