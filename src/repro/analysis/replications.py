"""Independent replications: across-run confidence intervals.

The batch-means CI in :mod:`repro.analysis.stats` works within one long
run.  For results near saturation — where a single run's autocorrelation
time explodes — the standard alternative is **independent replications**:
run the same configuration R times with different seeds and apply a
t-interval across the per-run means.  This module provides that
orchestration plus a two-configuration comparison that exploits common
random numbers (same seed per replication pair) for a paired-t difference
interval, the sharpest way to compare scheduling policies.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Tuple

import numpy as np
from scipy import stats as sps

# NOTE: repro.sim imports repro.analysis.stats, so sim types are imported
# lazily inside the functions to avoid a package-level cycle.
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.metrics import SimulationSummary
    from ..sim.system import SystemConfig

__all__ = ["ReplicatedResult", "replicate", "paired_comparison"]


@dataclass(frozen=True)
class ReplicatedResult:
    """Across-replication statistics for one configuration."""

    n_replications: int
    per_run_means: Tuple[float, ...]
    mean_delay_us: float
    ci_us: Tuple[float, float]
    all_stable: bool

    @property
    def half_width_us(self) -> float:
        return (self.ci_us[1] - self.ci_us[0]) / 2.0

    @property
    def relative_half_width(self) -> float:
        if self.mean_delay_us == 0 or math.isnan(self.mean_delay_us):
            return math.inf
        return self.half_width_us / abs(self.mean_delay_us)


def _t_interval(values: np.ndarray, confidence: float) -> Tuple[float, float]:
    mean = float(values.mean())
    if len(values) < 2:
        return (mean, mean)
    sem = float(values.std(ddof=1) / math.sqrt(len(values)))
    if sem == 0.0:
        return (mean, mean)
    t = float(sps.t.ppf(0.5 + confidence / 2.0, df=len(values) - 1))
    return (mean - t * sem, mean + t * sem)


def replicate(
    config: "SystemConfig",
    n_replications: int = 5,
    confidence: float = 0.95,
    base_seed: int = 1000,
    metric: Callable[["SimulationSummary"], float] = lambda s: s.mean_delay_us,
) -> ReplicatedResult:
    """Run ``n_replications`` seeds of one configuration.

    ``metric`` selects the per-run statistic (default: mean delay).
    Replication seeds are ``base_seed + k`` so two *different*
    configurations replicated with the same ``base_seed`` see pairwise
    common random numbers.
    """
    from ..sim.system import run_simulation

    if n_replications < 1:
        raise ValueError("n_replications must be >= 1")
    means = []
    stable = True
    for k in range(n_replications):
        summary = run_simulation(config.with_(seed=base_seed + k))
        means.append(float(metric(summary)))
        stable = stable and summary.stable
    arr = np.asarray(means)
    return ReplicatedResult(
        n_replications=n_replications,
        per_run_means=tuple(means),
        mean_delay_us=float(arr.mean()),
        ci_us=_t_interval(arr, confidence),
        all_stable=stable,
    )


@dataclass(frozen=True)
class PairedComparison:
    """Paired-t comparison of two configurations under common random
    numbers."""

    mean_difference_us: float
    ci_us: Tuple[float, float]
    significant: bool
    a: ReplicatedResult
    b: ReplicatedResult


def paired_comparison(
    config_a: "SystemConfig",
    config_b: "SystemConfig",
    n_replications: int = 5,
    confidence: float = 0.95,
    base_seed: int = 1000,
    metric: Callable[["SimulationSummary"], float] = lambda s: s.mean_delay_us,
) -> PairedComparison:
    """Paired difference ``mean(A) - mean(B)`` with a t-interval.

    Each replication pair shares a seed, so arrival processes are
    identical and the difference isolates the configuration change
    (common-random-numbers variance reduction).  ``significant`` is true
    when the CI excludes zero.
    """
    a = replicate(config_a, n_replications, confidence, base_seed, metric)
    b = replicate(config_b, n_replications, confidence, base_seed, metric)
    diffs = np.asarray(a.per_run_means) - np.asarray(b.per_run_means)
    lo, hi = _t_interval(diffs, confidence)
    return PairedComparison(
        mean_difference_us=float(diffs.mean()),
        ci_us=(lo, hi),
        significant=(lo > 0.0) or (hi < 0.0),
        a=a,
        b=b,
    )
