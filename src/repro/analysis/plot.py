"""Plain-text line plots for the CLI figures.

The experiment modules print their figure data as tables; these helpers
additionally render a compact character-grid plot so the *shape* of a
figure (crossovers, saturation knees, V-family ordering) is visible in a
terminal without any plotting dependency.

Only monospaced ASCII output — no styling, no external libraries.
"""

from __future__ import annotations

import math
from typing import List, Mapping, Optional, Sequence

__all__ = ["ascii_plot", "sparkline"]

_MARKS = "ox+*#@%&"
_TICKS = " ▁▂▃▄▅▆▇█"


def _finite(values) -> List[float]:
    return [v for v in values if v is not None and math.isfinite(v)]


def sparkline(values: Sequence[float]) -> str:
    """One-line bar sparkline of a series (non-finite values render '·')."""
    finite = _finite(values)
    if not finite:
        return "·" * len(values)
    lo, hi = min(finite), max(finite)
    span = hi - lo
    out = []
    for v in values:
        if v is None or not math.isfinite(v):
            out.append("·")
            continue
        frac = 0.5 if span == 0 else (v - lo) / span
        out.append(_TICKS[1 + round(frac * (len(_TICKS) - 2))])
    return "".join(out)


def ascii_plot(
    x: Sequence[float],
    series: Mapping[str, Sequence[float]],
    width: int = 64,
    height: int = 16,
    x_label: str = "x",
    y_label: str = "y",
    logx: bool = False,
    title: str = "",
) -> str:
    """Render several y-series against x on a character grid.

    Non-finite points (saturated runs reported as ``inf``) are clipped to
    the top row and drawn as ``^``.  Each series gets a distinct mark;
    the legend maps marks to names.
    """
    if width < 16 or height < 4:
        raise ValueError("grid too small to plot")
    if not x:
        return "(no data)"
    xs = [math.log10(v) for v in x] if logx else list(x)
    x_lo, x_hi = min(xs), max(xs)
    ys = _finite(v for s in series.values() for v in s)
    if not ys:
        return "(no finite data)"
    y_lo, y_hi = min(ys), max(ys)
    if y_hi == y_lo:
        y_hi = y_lo + 1.0
    if x_hi == x_lo:
        x_hi = x_lo + 1.0

    grid = [[" "] * width for _ in range(height)]

    def col(xv: float) -> int:
        return round((xv - x_lo) / (x_hi - x_lo) * (width - 1))

    def row(yv: float) -> int:
        frac = (yv - y_lo) / (y_hi - y_lo)
        return (height - 1) - round(frac * (height - 1))

    legend = []
    for k, (name, svals) in enumerate(series.items()):
        mark = _MARKS[k % len(_MARKS)]
        legend.append(f"{mark}={name}")
        prev: Optional[tuple] = None
        for xv, yv in zip(xs, svals):
            if yv is None:
                prev = None
                continue
            if not math.isfinite(yv):
                grid[0][col(xv)] = "^"
                prev = None
                continue
            c, r = col(xv), row(yv)
            grid[r][c] = mark
            # Simple line interpolation between consecutive points.
            if prev is not None:
                pc, pr = prev
                steps = max(abs(c - pc), abs(r - pr))
                for s in range(1, steps):
                    ic = pc + round((c - pc) * s / steps)
                    ir = pr + round((r - pr) * s / steps)
                    if grid[ir][ic] == " ":
                        grid[ir][ic] = "."
            prev = (c, r)

    lines = []
    if title:
        lines.append(title)
    y_hi_s, y_lo_s = f"{y_hi:.4g}", f"{y_lo:.4g}"
    margin = max(len(y_hi_s), len(y_lo_s)) + 1
    for i, grid_row in enumerate(grid):
        if i == 0:
            label = y_hi_s
        elif i == height - 1:
            label = y_lo_s
        else:
            label = ""
        lines.append(f"{label.rjust(margin)}|{''.join(grid_row)}")
    x_lo_s = f"{x[0]:.4g}"
    x_hi_s = f"{x[-1]:.4g}"
    axis = f"{' ' * margin}+{'-' * width}"
    lines.append(axis)
    pad = width - len(x_lo_s) - len(x_hi_s)
    lines.append(
        f"{' ' * (margin + 1)}{x_lo_s}{' ' * max(1, pad)}{x_hi_s}"
        f"  ({x_label}{', log' if logx else ''})"
    )
    lines.append(f"{' ' * (margin + 1)}{y_label}: {'  '.join(legend)}")
    return "\n".join(lines)
