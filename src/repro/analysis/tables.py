"""Paper-style ASCII tables and series rendering.

Every experiment emits its results both as structured data (lists of
dicts) and as formatted text via these helpers, so the benchmark harness
prints the same rows/series the paper reports.
"""

from __future__ import annotations

import math
from typing import Dict, List, Mapping, Optional, Sequence

__all__ = ["format_table", "format_series", "format_kv"]


def _fmt(value, precision: int) -> str:
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if math.isnan(value):
            return "nan"
        if value != 0 and (abs(value) >= 1e6 or abs(value) < 1e-3):
            return f"{value:.{precision}e}"
        return f"{value:.{precision}f}"
    return str(value)


def format_table(
    rows: Sequence[Mapping[str, object]],
    columns: Optional[Sequence[str]] = None,
    title: str = "",
    precision: int = 2,
) -> str:
    """Render rows of dicts as an aligned ASCII table.

    Column order follows ``columns`` when given, else the key order of the
    first row.  Missing cells render as ``-``.
    """
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    cols = list(columns) if columns else list(rows[0].keys())
    rendered: List[List[str]] = [[str(c) for c in cols]]
    for row in rows:
        rendered.append([_fmt(row.get(c), precision) for c in cols])
    widths = [max(len(r[i]) for r in rendered) for i in range(len(cols))]
    lines = []
    if title:
        lines.append(title)
    header = " | ".join(h.ljust(w) for h, w in zip(rendered[0], widths))
    lines.append(header)
    lines.append("-+-".join("-" * w for w in widths))
    for r in rendered[1:]:
        lines.append(" | ".join(c.rjust(w) for c, w in zip(r, widths)))
    return "\n".join(lines)


def format_series(
    x: Sequence[float],
    series: Mapping[str, Sequence[float]],
    x_label: str = "x",
    title: str = "",
    precision: int = 2,
) -> str:
    """Render one x-column against several y-series (a figure's data)."""
    rows = []
    for i, xv in enumerate(x):
        row: Dict[str, object] = {x_label: xv}
        for name, ys in series.items():
            row[name] = ys[i] if i < len(ys) else None
        rows.append(row)
    return format_table(rows, columns=[x_label, *series.keys()],
                        title=title, precision=precision)


def format_kv(items: Mapping[str, object], title: str = "", precision: int = 3) -> str:
    """Render a flat mapping as aligned ``key: value`` lines."""
    lines = [title] if title else []
    width = max((len(str(k)) for k in items), default=0)
    for k, v in items.items():
        lines.append(f"{str(k).ljust(width)} : {_fmt(v, precision)}")
    return "\n".join(lines)
