"""Closed-form queueing formulas used to validate the simulator.

In degenerate configurations the affinity simulator reduces to textbook
queues, giving exact expected delays to test against:

- one processor, deterministic service (``V = 0``, warm cache, no
  locking): **M/D/1**;
- one processor, general service: **M/G/1** (Pollaczek-Khinchine);
- N processors with a shared queue and (approximately) exponential
  service: **M/M/c** (Erlang C).

These are validation substrates, not part of the paper's model itself —
they pin down the queueing core of the simulator so that observed effects
can be attributed to the cache-affinity model rather than queueing bugs.
"""

from __future__ import annotations


__all__ = [
    "mm1_mean_delay",
    "md1_mean_delay",
    "mg1_mean_delay",
    "erlang_c",
    "mmc_mean_delay",
]


def _check_load(rho: float) -> None:
    if not (0.0 <= rho < 1.0):
        raise ValueError(f"utilization must be in [0, 1) for stability, got {rho}")


def mm1_mean_delay(arrival_rate: float, service_rate: float) -> float:
    """Mean sojourn time of M/M/1: ``1 / (mu - lambda)``."""
    if service_rate <= 0:
        raise ValueError("service_rate must be positive")
    _check_load(arrival_rate / service_rate)
    return 1.0 / (service_rate - arrival_rate)


def md1_mean_delay(arrival_rate: float, service_time: float) -> float:
    """Mean sojourn time of M/D/1 (deterministic service).

    ``W = s + rho*s / (2*(1-rho))``.
    """
    if service_time <= 0:
        raise ValueError("service_time must be positive")
    rho = arrival_rate * service_time
    _check_load(rho)
    return service_time + rho * service_time / (2.0 * (1.0 - rho))


def mg1_mean_delay(arrival_rate: float, service_mean: float,
                   service_second_moment: float) -> float:
    """Pollaczek-Khinchine mean sojourn time of M/G/1.

    ``W = E[S] + lambda * E[S^2] / (2 * (1 - rho))``.
    """
    if service_mean <= 0:
        raise ValueError("service_mean must be positive")
    if service_second_moment < service_mean ** 2:
        raise ValueError("E[S^2] cannot be below E[S]^2")
    rho = arrival_rate * service_mean
    _check_load(rho)
    return service_mean + arrival_rate * service_second_moment / (2.0 * (1.0 - rho))


def erlang_c(n_servers: int, offered_load: float) -> float:
    """Erlang C: probability an arrival waits in M/M/c.

    ``offered_load = lambda / mu`` (in Erlangs); requires
    ``offered_load < n_servers`` for stability.
    """
    if n_servers < 1:
        raise ValueError("n_servers must be >= 1")
    a = offered_load
    if not (0.0 <= a < n_servers):
        raise ValueError(f"offered load {a} must be in [0, {n_servers}) for stability")
    if a == 0.0:
        return 0.0
    # Stable iterative evaluation of the Erlang-B recursion, then convert.
    b = 1.0
    for k in range(1, n_servers + 1):
        b = a * b / (k + a * b)
    rho = a / n_servers
    return b / (1.0 - rho + rho * b)


def mmc_mean_delay(arrival_rate: float, service_rate: float, n_servers: int) -> float:
    """Mean sojourn time of M/M/c.

    ``W = 1/mu + C(c, a) / (c*mu - lambda)`` with ``C`` the Erlang-C
    waiting probability.
    """
    if service_rate <= 0:
        raise ValueError("service_rate must be positive")
    a = arrival_rate / service_rate
    pw = erlang_c(n_servers, a)
    return 1.0 / service_rate + pw / (n_servers * service_rate - arrival_rate)
