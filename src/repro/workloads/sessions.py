"""Dynamic stream population (session churn).

The abstract claims affinity scheduling "enabl[es] the host to support a
greater number of concurrent streams".  The main experiments hold the
stream population fixed; this module models the population itself as a
birth-death process so that claim can be tested directly:

- new streams (connections) open as a Poisson process at
  ``sessions_per_second``;
- each lives for an exponential lifetime with mean ``mean_lifetime_us``;
- while alive it sends Poisson packets at ``per_stream_rate_pps``.

By Little's law the mean concurrent population is
``sessions_per_second * mean_lifetime_us * 1e-6`` and the mean offered
packet rate is population × per-stream rate — both exposed as properties
so experiments can sweep "concurrent streams" directly.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["SessionChurnSpec"]


@dataclass(frozen=True)
class SessionChurnSpec:
    """Birth-death stream population riding on top of the base traffic."""

    sessions_per_second: float
    mean_lifetime_us: float
    per_stream_rate_pps: float

    def __post_init__(self) -> None:
        if self.sessions_per_second <= 0:
            raise ValueError("sessions_per_second must be positive")
        if self.mean_lifetime_us <= 0:
            raise ValueError("mean_lifetime_us must be positive")
        if self.per_stream_rate_pps <= 0:
            raise ValueError("per_stream_rate_pps must be positive")

    @property
    def mean_concurrent_sessions(self) -> float:
        """Little's law: arrival rate x mean lifetime."""
        return self.sessions_per_second * self.mean_lifetime_us * 1e-6

    @property
    def offered_rate_pps(self) -> float:
        """Long-run mean packet rate contributed by the churning
        population."""
        return self.mean_concurrent_sessions * self.per_stream_rate_pps

    @classmethod
    def for_population(cls, mean_sessions: float, mean_lifetime_us: float,
                       per_stream_rate_pps: float) -> "SessionChurnSpec":
        """Construct by target mean concurrent population."""
        if mean_sessions <= 0:
            raise ValueError("mean_sessions must be positive")
        return cls(
            sessions_per_second=mean_sessions / (mean_lifetime_us * 1e-6),
            mean_lifetime_us=mean_lifetime_us,
            per_stream_rate_pps=per_stream_rate_pps,
        )
