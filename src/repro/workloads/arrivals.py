"""Per-stream packet arrival processes.

The paper's main results use independent per-stream Poisson arrivals; the
burstiness study uses batch (bursty) arrivals on a stream.  Each process
is a small stateful object sampled event-by-event by the simulator: the
system asks for the next *batch* — an interarrival gap plus the number of
packets arriving together — which uniformly covers smooth and bursty
processes.

Factories are immutable *specs* (safe to share across experiment sweeps);
``spec.build(rng)`` yields the per-stream stateful sampler bound to that
stream's private RNG substream.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

import numpy as np

__all__ = [
    "ArrivalArrayChunk",
    "ArrivalBatch",
    "ArrivalChunk",
    "ArrivalProcess",
    "ArrivalSpec",
    "PoissonArrivals",
    "PoissonSpec",
    "DeterministicArrivals",
    "DeterministicSpec",
    "BatchPoissonArrivals",
    "BatchPoissonSpec",
    "OnOffArrivals",
    "OnOffSpec",
]

#: ``(gap_us, batch_size)``: the next batch arrives ``gap_us`` after the
#: previous batch, containing ``batch_size`` simultaneous packets.
ArrivalBatch = Tuple[float, int]

#: ``(gaps_us, batch_sizes)`` for a pregenerated chunk of batches; a
#: ``None`` size list means "every batch is a single packet" (the common
#: case, spared a list of ones).
ArrivalChunk = Tuple[List[float], Optional[List[int]]]

#: Array-valued chunk (``float64`` gaps, optional integer sizes) for the
#: batched engine's vectorized merge; same bit-identity contract as
#: :data:`ArrivalChunk`.
ArrivalArrayChunk = Tuple[np.ndarray, Optional[np.ndarray]]


class ArrivalProcess(ABC):
    """Stateful per-stream arrival sampler."""

    @abstractmethod
    def next_batch(self) -> ArrivalBatch:
        """Sample the next ``(interarrival_gap_us, batch_size)``."""

    def next_batches(self, n: int) -> ArrivalChunk:
        """Pregenerate the next ``n`` batches in one call.

        Returns ``(gaps_us, batch_sizes)`` where ``batch_sizes`` may be
        ``None`` when every batch contains exactly one packet.

        **Contract (bit-identity):** the concatenation of chunks must
        reproduce, value for value, the sequence that repeated
        :meth:`next_batch` calls would have produced from the same RNG
        state — the simulator's vectorized arrival pregeneration relies
        on this to keep runs bit-identical with the historical
        event-by-event sampling.  The default implementation simply loops
        :meth:`next_batch`; subclasses may vectorize only where NumPy's
        bulk sampling is stream-equivalent to repeated scalar sampling
        (e.g. ``Generator.exponential``), which the property tests in
        ``tests/workloads/test_arrival_pregen.py`` enforce for every
        process type.
        """
        if n <= 0:
            raise ValueError("n must be positive")
        gaps: List[float] = []
        sizes: List[int] = []
        all_single = True
        next_batch = self.next_batch
        for _ in range(n):
            gap, size = next_batch()
            gaps.append(gap)
            sizes.append(size)
            if size != 1:
                all_single = False
        return gaps, (None if all_single else sizes)

    def next_batches_array(self, n: int) -> ArrivalArrayChunk:
        """Array-valued variant of :meth:`next_batches`.

        Returns ``(gaps_us, batch_sizes)`` as a ``float64`` array and an
        optional integer array (``None`` when every batch is a single
        packet).  Same contract as :meth:`next_batches`: the concatenated
        chunks must reproduce the event-by-event draw sequence value for
        value — this is the block form the batched engine core
        (:mod:`repro.sim.batch`) consumes, merging streams with vectorized
        cumulative sums instead of per-event scheduling.  The default
        implementation wraps :meth:`next_batches` (list and array carry
        the identical float64 values); samplers whose bulk NumPy draws are
        stream-equivalent override it to skip the list round-trip.
        """
        gaps, sizes = self.next_batches(n)
        return (
            np.asarray(gaps, dtype=np.float64),
            None if sizes is None else np.asarray(sizes, dtype=np.int64),
        )

    def iter_batches(self, horizon_us: float) -> Iterator[Tuple[float, int]]:
        """Yield ``(absolute_time_us, batch_size)`` up to a horizon."""
        t = 0.0
        while True:
            gap, size = self.next_batch()
            t += gap
            if t > horizon_us:
                return
            yield t, size


class ArrivalSpec(ABC):
    """Immutable factory for arrival processes."""

    @abstractmethod
    def build(self, rng: np.random.Generator) -> ArrivalProcess:
        """Create the stateful sampler for one stream."""

    @property
    @abstractmethod
    def mean_rate_pps(self) -> float:
        """Long-run packet rate (packets/second) of one stream."""


# ----------------------------------------------------------------------
# Poisson
# ----------------------------------------------------------------------
class PoissonArrivals(ArrivalProcess):
    """Homogeneous Poisson arrivals (single packets)."""

    def __init__(self, rate_pps: float, rng: np.random.Generator) -> None:
        if rate_pps <= 0:
            raise ValueError("rate_pps must be positive")
        self._mean_gap_us = 1e6 / rate_pps
        self._rng = rng

    def next_batch(self) -> ArrivalBatch:
        return float(self._rng.exponential(self._mean_gap_us)), 1

    def next_batches(self, n: int) -> ArrivalChunk:
        """Vectorized pregeneration.

        ``Generator.exponential(scale, n)`` consumes the bit stream
        exactly as ``n`` scalar ``exponential(scale)`` calls do, so the
        chunk is bit-identical to event-by-event sampling (asserted by
        the pregeneration property tests).
        """
        if n <= 0:
            raise ValueError("n must be positive")
        return self._rng.exponential(self._mean_gap_us, n).tolist(), None

    def next_batches_array(self, n: int) -> ArrivalArrayChunk:
        """Vectorized array pregeneration (same draws as
        :meth:`next_batches`, without the ``tolist`` round-trip)."""
        if n <= 0:
            raise ValueError("n must be positive")
        return self._rng.exponential(self._mean_gap_us, n), None


@dataclass(frozen=True)
class PoissonSpec(ArrivalSpec):
    """Poisson arrivals at ``rate_pps`` packets/second."""

    rate_pps: float

    def __post_init__(self) -> None:
        if self.rate_pps <= 0:
            raise ValueError("rate_pps must be positive")

    def build(self, rng: np.random.Generator) -> PoissonArrivals:
        return PoissonArrivals(self.rate_pps, rng)

    @property
    def mean_rate_pps(self) -> float:
        return self.rate_pps


# ----------------------------------------------------------------------
# Deterministic
# ----------------------------------------------------------------------
class DeterministicArrivals(ArrivalProcess):
    """Evenly spaced arrivals (used for validation and capacity probing)."""

    def __init__(self, rate_pps: float, phase_us: float = 0.0) -> None:
        if rate_pps <= 0:
            raise ValueError("rate_pps must be positive")
        self._gap_us = 1e6 / rate_pps
        self._first = True
        self._phase_us = phase_us

    def next_batch(self) -> ArrivalBatch:
        if self._first:
            self._first = False
            return self._phase_us + self._gap_us, 1
        return self._gap_us, 1

    def next_batches(self, n: int) -> ArrivalChunk:
        if n <= 0:
            raise ValueError("n must be positive")
        gaps = [self._gap_us] * n
        if self._first:
            self._first = False
            gaps[0] = self._phase_us + self._gap_us
        return gaps, None


@dataclass(frozen=True)
class DeterministicSpec(ArrivalSpec):
    """Deterministic arrivals at ``rate_pps``, optionally phase-shifted."""

    rate_pps: float
    phase_us: float = 0.0

    def __post_init__(self) -> None:
        if self.rate_pps <= 0:
            raise ValueError("rate_pps must be positive")
        if self.phase_us < 0:
            raise ValueError("phase_us must be non-negative")

    def build(self, rng: np.random.Generator) -> DeterministicArrivals:
        return DeterministicArrivals(self.rate_pps, self.phase_us)

    @property
    def mean_rate_pps(self) -> float:
        return self.rate_pps


# ----------------------------------------------------------------------
# Batch Poisson (intra-stream burstiness)
# ----------------------------------------------------------------------
class BatchPoissonArrivals(ArrivalProcess):
    """Poisson batch instants; geometric batch sizes (mean ``burst``).

    The standard bursty-arrival abstraction: packets arrive in back-to-back
    bursts whose size is geometric with mean ``mean_batch``; batch instants
    form a Poisson process whose rate is scaled down so the long-run packet
    rate stays ``rate_pps``.  ``mean_batch = 1`` degenerates to plain
    Poisson — which is how experiments sweep burstiness at constant load
    (the paper: IPS "exhibits less robust response to intra-stream
    burstiness").
    """

    def __init__(self, rate_pps: float, mean_batch: float,
                 rng: np.random.Generator) -> None:
        if rate_pps <= 0:
            raise ValueError("rate_pps must be positive")
        if mean_batch < 1.0:
            raise ValueError("mean_batch must be >= 1")
        self._batch_gap_us = mean_batch * 1e6 / rate_pps
        self._p = 1.0 / mean_batch  # geometric success prob, support {1,2,..}
        self._rng = rng

    def next_batch(self) -> ArrivalBatch:
        gap = float(self._rng.exponential(self._batch_gap_us))
        size = int(self._rng.geometric(self._p))
        return gap, size

    # next_batches: the exponential/geometric draws interleave per batch,
    # so no bulk NumPy call can reproduce the scalar draw order; the base
    # implementation's scalar loop keeps pregeneration bit-identical.


@dataclass(frozen=True)
class BatchPoissonSpec(ArrivalSpec):
    """Bursty arrivals: Poisson bursts of geometric size ``mean_batch``."""

    rate_pps: float
    mean_batch: float = 1.0

    def __post_init__(self) -> None:
        if self.rate_pps <= 0:
            raise ValueError("rate_pps must be positive")
        if self.mean_batch < 1.0:
            raise ValueError("mean_batch must be >= 1")

    def build(self, rng: np.random.Generator) -> BatchPoissonArrivals:
        return BatchPoissonArrivals(self.rate_pps, self.mean_batch, rng)

    @property
    def mean_rate_pps(self) -> float:
        return self.rate_pps


# ----------------------------------------------------------------------
# ON-OFF (Markov-modulated)
# ----------------------------------------------------------------------
class OnOffArrivals(ArrivalProcess):
    """Two-state ON-OFF source.

    During exponentially distributed ON periods, packets arrive Poisson at
    ``peak_rate_pps``; OFF periods (also exponential) are silent.  The
    long-run mean rate is ``peak * on/(on+off)``.
    """

    def __init__(self, peak_rate_pps: float, mean_on_us: float,
                 mean_off_us: float, rng: np.random.Generator) -> None:
        if peak_rate_pps <= 0:
            raise ValueError("peak_rate_pps must be positive")
        if mean_on_us <= 0 or mean_off_us < 0:
            raise ValueError("need mean_on_us > 0 and mean_off_us >= 0")
        self._gap_us = 1e6 / peak_rate_pps
        self._mean_on = mean_on_us
        self._mean_off = mean_off_us
        self._rng = rng
        self._on_remaining = float(rng.exponential(mean_on_us))

    def next_batch(self) -> ArrivalBatch:
        gap = float(self._rng.exponential(self._gap_us))
        extra_off = 0.0
        # Consume ON time; interleave OFF periods whenever it runs out.
        while gap > self._on_remaining:
            gap -= self._on_remaining
            extra_off += float(self._rng.exponential(self._mean_off))
            self._on_remaining = float(self._rng.exponential(self._mean_on))
        self._on_remaining -= gap
        return gap + extra_off, 1


@dataclass(frozen=True)
class OnOffSpec(ArrivalSpec):
    """Markov-modulated ON-OFF source."""

    peak_rate_pps: float
    mean_on_us: float
    mean_off_us: float

    def __post_init__(self) -> None:
        if self.peak_rate_pps <= 0:
            raise ValueError("peak_rate_pps must be positive")
        if self.mean_on_us <= 0 or self.mean_off_us < 0:
            raise ValueError("need mean_on_us > 0 and mean_off_us >= 0")

    def build(self, rng: np.random.Generator) -> OnOffArrivals:
        return OnOffArrivals(self.peak_rate_pps, self.mean_on_us,
                             self.mean_off_us, rng)

    @property
    def mean_rate_pps(self) -> float:
        duty = self.mean_on_us / (self.mean_on_us + self.mean_off_us)
        return self.peak_rate_pps * duty
