"""Jain-Routhier packet-train arrival model [9].

The paper lists, among the extensions under pursuit, "examining the
performance of affinity-based scheduling as a function of stream
burstiness and source locality, as captured by the Packet-Train model of
[9]".  This module implements that model so the burstiness experiments can
be driven by it (an *extension* experiment; the main results use Poisson).

Model (Jain & Routhier, JSAC 1986): traffic on a stream consists of
**trains**; a train is a sequence of **cars** (packets) separated by short
inter-car gaps; trains are separated by much longer inter-train gaps.  We
parameterize:

- geometric train length with mean ``mean_train_len`` (support >= 1),
- fixed (or exponential) inter-car gap ``inter_car_us``,
- exponential inter-train gap with mean ``inter_train_us``.

The long-run packet rate is
``mean_train_len / (inter_train_us + (mean_train_len - 1) * inter_car_us)``
packets/µs; :func:`PacketTrainSpec.for_rate` solves for the inter-train
gap that achieves a target rate (so burstiness can be swept at constant
offered load).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .arrivals import ArrivalBatch, ArrivalProcess, ArrivalSpec

__all__ = ["PacketTrainArrivals", "PacketTrainSpec"]


class PacketTrainArrivals(ArrivalProcess):
    """Stateful packet-train sampler (one stream)."""

    def __init__(self, mean_train_len: float, inter_car_us: float,
                 inter_train_us: float, rng: np.random.Generator,
                 exponential_car_gaps: bool = False) -> None:
        if mean_train_len < 1.0:
            raise ValueError("mean_train_len must be >= 1")
        if inter_car_us < 0 or inter_train_us <= 0:
            raise ValueError("need inter_car_us >= 0 and inter_train_us > 0")
        self._p = 1.0 / mean_train_len
        self._inter_car_us = inter_car_us
        self._inter_train_us = inter_train_us
        self._rng = rng
        self._exp_car = exponential_car_gaps
        self._cars_left = 0  # cars remaining in the current train

    def next_batch(self) -> ArrivalBatch:
        if self._cars_left > 0:
            self._cars_left -= 1
            gap = (
                float(self._rng.exponential(self._inter_car_us))
                if self._exp_car
                else self._inter_car_us
            )
            return gap, 1
        # Start a new train: exponential locomotive gap, geometric length.
        train_len = int(self._rng.geometric(self._p))
        self._cars_left = train_len - 1
        return float(self._rng.exponential(self._inter_train_us)), 1


@dataclass(frozen=True)
class PacketTrainSpec(ArrivalSpec):
    """Packet-train traffic parameterized by train shape and gaps."""

    mean_train_len: float
    inter_car_us: float
    inter_train_us: float
    exponential_car_gaps: bool = False

    def __post_init__(self) -> None:
        if self.mean_train_len < 1.0:
            raise ValueError("mean_train_len must be >= 1")
        if self.inter_car_us < 0 or self.inter_train_us <= 0:
            raise ValueError("need inter_car_us >= 0 and inter_train_us > 0")

    def build(self, rng: np.random.Generator) -> PacketTrainArrivals:
        return PacketTrainArrivals(
            self.mean_train_len, self.inter_car_us, self.inter_train_us,
            rng, self.exponential_car_gaps,
        )

    @property
    def mean_rate_pps(self) -> float:
        mean_cycle_us = (
            self.inter_train_us + (self.mean_train_len - 1.0) * self.inter_car_us
        )
        return self.mean_train_len / mean_cycle_us * 1e6

    @classmethod
    def for_rate(cls, rate_pps: float, mean_train_len: float,
                 inter_car_us: float,
                 exponential_car_gaps: bool = False) -> "PacketTrainSpec":
        """Solve the inter-train gap for a target long-run packet rate.

        Raises if the requested rate is infeasible for the given train
        shape (cars alone already exceed the target budget).
        """
        if rate_pps <= 0:
            raise ValueError("rate_pps must be positive")
        cycle_us = mean_train_len / rate_pps * 1e6
        inter_train_us = cycle_us - (mean_train_len - 1.0) * inter_car_us
        if inter_train_us <= 0:
            raise ValueError(
                f"rate {rate_pps} pps infeasible for trains of "
                f"{mean_train_len} cars every {inter_car_us} us"
            )
        return cls(
            mean_train_len=mean_train_len,
            inter_car_us=inter_car_us,
            inter_train_us=inter_train_us,
            exponential_car_gaps=exponential_car_gaps,
        )
