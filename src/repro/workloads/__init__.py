"""Traffic generation: arrival processes, packet trains, traffic specs."""

from .arrivals import (
    ArrivalBatch,
    ArrivalProcess,
    ArrivalSpec,
    BatchPoissonArrivals,
    BatchPoissonSpec,
    DeterministicArrivals,
    DeterministicSpec,
    OnOffArrivals,
    OnOffSpec,
    PoissonArrivals,
    PoissonSpec,
)
from .packet_train import PacketTrainArrivals, PacketTrainSpec
from .replay import ReplayArrivals, ReplaySpec
from .sessions import SessionChurnSpec
from .traffic import (
    GUSELLA_LAN_MIX,
    EmpiricalMix,
    FixedSize,
    PacketSizeModel,
    TrafficSpec,
)

__all__ = [
    "ArrivalBatch",
    "ArrivalProcess",
    "ArrivalSpec",
    "BatchPoissonArrivals",
    "BatchPoissonSpec",
    "DeterministicArrivals",
    "DeterministicSpec",
    "EmpiricalMix",
    "FixedSize",
    "GUSELLA_LAN_MIX",
    "OnOffArrivals",
    "OnOffSpec",
    "PacketSizeModel",
    "PacketTrainArrivals",
    "PacketTrainSpec",
    "PoissonArrivals",
    "PoissonSpec",
    "ReplayArrivals",
    "ReplaySpec",
    "SessionChurnSpec",
    "TrafficSpec",
]
