"""Multi-stream traffic descriptions.

A :class:`TrafficSpec` bundles the per-stream arrival specs and packet-size
model for a whole simulation run, with convenience constructors for the
paper's scenarios (homogeneous Poisson streams; one bursty stream among
smooth ones; a single hot stream for scalability probing).

Packet sizes matter only when data-touching operations are enabled (E14);
the paper's default results are size-independent ("packet processing time
is dominated by non-data touching operations with generally fixed
per-packet overheads" [10], because "typically in real environments most
packets are small" [5, 10]).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence, Tuple

import numpy as np

from .arrivals import ArrivalSpec, BatchPoissonSpec, PoissonSpec

__all__ = ["PacketSizeModel", "FixedSize", "EmpiricalMix", "TrafficSpec"]


class PacketSizeModel:
    """Base: sample payload sizes (bytes) for arriving packets."""

    def sample(self, rng: np.random.Generator) -> int:
        raise NotImplementedError

    @property
    def mean_bytes(self) -> float:
        raise NotImplementedError


@dataclass(frozen=True)
class FixedSize(PacketSizeModel):
    """Every packet carries the same payload."""

    size_bytes: int = 0

    def __post_init__(self) -> None:
        if self.size_bytes < 0:
            raise ValueError("size_bytes must be non-negative")

    def sample(self, rng: np.random.Generator) -> int:
        return self.size_bytes

    @property
    def mean_bytes(self) -> float:
        return float(self.size_bytes)


@dataclass(frozen=True)
class EmpiricalMix(PacketSizeModel):
    """Discrete size mix (e.g. the small-packet-dominated LAN mixes of
    Gusella [5]): sizes with probabilities."""

    sizes: Tuple[int, ...]
    probabilities: Tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.sizes) != len(self.probabilities) or not self.sizes:
            raise ValueError("sizes and probabilities must align and be non-empty")
        if any(s < 0 for s in self.sizes):
            raise ValueError("sizes must be non-negative")
        if any(p < 0 for p in self.probabilities):
            raise ValueError("probabilities must be non-negative")
        total = sum(self.probabilities)
        if abs(total - 1.0) > 1e-9:
            raise ValueError(f"probabilities must sum to 1, got {total}")

    def sample(self, rng: np.random.Generator) -> int:
        idx = rng.choice(len(self.sizes), p=np.asarray(self.probabilities))
        return int(self.sizes[idx])

    @property
    def mean_bytes(self) -> float:
        return float(np.dot(self.sizes, self.probabilities))


#: A Gusella-flavoured diskless-workstation Ethernet mix: mostly tiny
#: packets with a minority of large ones.
GUSELLA_LAN_MIX = EmpiricalMix(
    sizes=(64, 128, 512, 1024, 4432),
    probabilities=(0.55, 0.20, 0.10, 0.08, 0.07),
)


@dataclass(frozen=True)
class TrafficSpec:
    """All traffic for one run: one arrival spec per stream + sizes."""

    stream_specs: Tuple[ArrivalSpec, ...]
    size_model: PacketSizeModel = field(default_factory=FixedSize)

    def __post_init__(self) -> None:
        if not self.stream_specs:
            raise ValueError("need at least one stream")

    @property
    def n_streams(self) -> int:
        return len(self.stream_specs)

    @property
    def total_rate_pps(self) -> float:
        """Aggregate long-run offered packet rate."""
        return sum(s.mean_rate_pps for s in self.stream_specs)

    # ------------------------------------------------------------------
    # Scenario constructors
    # ------------------------------------------------------------------
    @classmethod
    def homogeneous_poisson(
        cls, n_streams: int, total_rate_pps: float,
        size_model: PacketSizeModel = FixedSize(),
    ) -> "TrafficSpec":
        """The paper's base scenario: ``n`` identical Poisson streams
        sharing a total offered rate."""
        if n_streams < 1:
            raise ValueError("n_streams must be >= 1")
        per = total_rate_pps / n_streams
        return cls(tuple(PoissonSpec(per) for _ in range(n_streams)), size_model)

    @classmethod
    def one_bursty_among_smooth(
        cls, n_streams: int, total_rate_pps: float, mean_batch: float,
        size_model: PacketSizeModel = FixedSize(),
    ) -> "TrafficSpec":
        """Stream 0 sends bursts of mean size ``mean_batch``; the rest are
        Poisson; all streams carry equal long-run rate (burstiness sweep at
        constant load — the E13 scenario)."""
        if n_streams < 1:
            raise ValueError("n_streams must be >= 1")
        per = total_rate_pps / n_streams
        specs: Sequence[ArrivalSpec] = [BatchPoissonSpec(per, mean_batch)] + [
            PoissonSpec(per) for _ in range(n_streams - 1)
        ]
        return cls(tuple(specs), size_model)

    @classmethod
    def heterogeneous(
        cls, rates_pps: Sequence[float],
        size_model: PacketSizeModel = FixedSize(),
    ) -> "TrafficSpec":
        """Poisson streams with individually specified rates (e.g. one hot
        stream among mice)."""
        if not rates_pps:
            raise ValueError("need at least one stream rate")
        return cls(tuple(PoissonSpec(r) for r in rates_pps), size_model)

    @classmethod
    def single_stream(
        cls, rate_pps: float, size_model: PacketSizeModel = FixedSize(),
    ) -> "TrafficSpec":
        """One Poisson stream (the intra-stream scalability scenario)."""
        return cls((PoissonSpec(rate_pps),), size_model)
