"""Trace-replay arrivals: drive the simulator from recorded timestamps.

The paper's experiments use synthetic processes, but a downstream user of
this library will often have a packet trace (timestamps from a capture, a
previous simulation, or a workload generator outside this package).
:class:`ReplaySpec` wraps an array of arrival times as an arrival process,
with optional looping (the trace repeats, shifted to preserve its internal
spacing) and time scaling (replay the same trace at a hotter or cooler
rate: ``time_scale=0.5`` replays twice as fast).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from .arrivals import ArrivalBatch, ArrivalProcess, ArrivalSpec

__all__ = ["ReplayArrivals", "ReplaySpec"]


class ReplayArrivals(ArrivalProcess):
    """Stateful replay of a (pre-scaled) timestamp trace."""

    def __init__(self, times_us: np.ndarray, loop: bool) -> None:
        self._times = times_us
        self._loop = loop
        # Gap inserted between cycles: the trace's mean inter-arrival.
        self._cycle_pad = (
            float(times_us[-1]) / max(1, len(times_us) - 1)
        )
        self._idx = 0
        self._offset = 0.0
        self._prev = 0.0

    def next_batch(self) -> ArrivalBatch:
        if self._idx >= len(self._times):
            if not self._loop:
                # Exhausted: push the "next" arrival beyond any horizon
                # (callers bound arrivals by the simulation horizon).
                return float("inf"), 1
            self._offset += float(self._times[-1]) + self._cycle_pad
            self._idx = 0
        t = self._offset + float(self._times[self._idx])
        self._idx += 1
        gap = t - self._prev
        self._prev = t
        return gap, 1


@dataclass(frozen=True)
class ReplaySpec(ArrivalSpec):
    """Replay recorded arrival times (µs, ascending, first > 0)."""

    times_us: Tuple[float, ...]
    loop: bool = True
    time_scale: float = 1.0

    def __post_init__(self) -> None:
        if not self.times_us:
            raise ValueError("times_us must be non-empty")
        arr = np.asarray(self.times_us, dtype=np.float64)
        if arr[0] <= 0:
            raise ValueError("first arrival must be after time 0")
        if np.any(np.diff(arr) < 0):
            raise ValueError("times_us must be sorted ascending")
        if self.time_scale <= 0:
            raise ValueError("time_scale must be positive")

    @classmethod
    def from_array(cls, times_us: Sequence[float], **kwargs) -> "ReplaySpec":
        return cls(times_us=tuple(float(t) for t in times_us), **kwargs)

    def _scaled(self) -> np.ndarray:
        return np.asarray(self.times_us, dtype=np.float64) * self.time_scale

    def build(self, rng: np.random.Generator) -> ReplayArrivals:
        return ReplayArrivals(self._scaled(), self.loop)

    @property
    def mean_rate_pps(self) -> float:
        """Long-run rate: arrivals per loop cycle (looped), or per trace
        span (one-shot)."""
        times = self._scaled()
        span_us = float(times[-1])
        if span_us <= 0:
            return 0.0
        if self.loop:
            pad = span_us / max(1, len(times) - 1)
            return len(times) / (span_us + pad) * 1e6
        return len(times) / span_us * 1e6
