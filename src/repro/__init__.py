"""repro — reproduction of Salehi, Kurose & Towsley (HPDC-4, 1995):
"The Performance Impact of Scheduling for Cache Affinity in Parallel
Network Processing".

Public API highlights
---------------------
- :class:`repro.SystemConfig` / :class:`repro.NetworkProcessingSystem` —
  configure and run one multiprocessor protocol-processing simulation.
- :class:`repro.TrafficSpec` — describe multi-stream traffic.
- :class:`repro.ExecutionTimeModel` — the analytic packet execution-time
  model (reload-transient interpolation over the cache hierarchy).
- :mod:`repro.cache` — footprint function, flush model, trace-driven cache
  simulator.
- :mod:`repro.experiments` — one module per paper table/figure.
- :class:`repro.SweepRunner` / :class:`repro.ResultCache` — parallel sweep
  execution with a persistent content-addressed result cache
  (:mod:`repro.runner`).
- :mod:`repro.verify` — golden-result regression, online runtime
  invariant checking (:class:`repro.InvariantChecker`, enabled with
  ``SystemConfig(check_invariants=True)``), and statistical equivalence
  of result sets across seeds.
"""

from .cache import (
    CacheHierarchy,
    CacheLevelConfig,
    CacheSimulator,
    FootprintFunction,
    MVS_WORKLOAD,
    flushed_fraction,
    sgi_challenge_hierarchy,
)
from .core import (
    COLD,
    ComponentState,
    ExecutionTimeModel,
    FootprintComposition,
    PAPER_COMPOSITION,
    PAPER_COSTS,
    PAPER_PLATFORM,
    PlatformConfig,
    ProtocolCosts,
    make_ips_policy,
    make_locking_policy,
)
from .runner import (
    ResultCache,
    SweepRunner,
    config_key,
    get_runner,
    use_runner,
)
from .sim import (
    NetworkProcessingSystem,
    SimulationSummary,
    Simulator,
    SystemConfig,
    run_simulation,
)
from .verify import InvariantChecker, InvariantViolation
from .workloads import (
    BatchPoissonSpec,
    DeterministicSpec,
    OnOffSpec,
    PacketTrainSpec,
    PoissonSpec,
    TrafficSpec,
)

__version__ = "1.0.0"

__all__ = [
    "BatchPoissonSpec",
    "COLD",
    "CacheHierarchy",
    "CacheLevelConfig",
    "CacheSimulator",
    "ComponentState",
    "DeterministicSpec",
    "ExecutionTimeModel",
    "FootprintComposition",
    "FootprintFunction",
    "InvariantChecker",
    "InvariantViolation",
    "MVS_WORKLOAD",
    "NetworkProcessingSystem",
    "OnOffSpec",
    "PAPER_COMPOSITION",
    "PAPER_COSTS",
    "PAPER_PLATFORM",
    "PacketTrainSpec",
    "PlatformConfig",
    "PoissonSpec",
    "ProtocolCosts",
    "ResultCache",
    "SimulationSummary",
    "Simulator",
    "SweepRunner",
    "SystemConfig",
    "TrafficSpec",
    "__version__",
    "config_key",
    "flushed_fraction",
    "get_runner",
    "make_ips_policy",
    "make_locking_policy",
    "run_simulation",
    "sgi_challenge_hierarchy",
    "use_runner",
]
