"""Golden-result regression: record and check experiment snapshots.

``record`` runs experiments on their fast grids and snapshots the
*structured* output (rows + JSON-able meta — never the rendered text,
which may change cosmetically) to content-addressed JSON files under
``tests/goldens/``; ``check`` re-runs the same experiments through the
active :class:`~repro.runner.SweepRunner` and diffs the fresh output
against the stored goldens field by field, producing a readable
per-experiment report.

Comparison semantics
--------------------
- integers, booleans, strings, ``None`` — exact;
- floats — bit-equality passes immediately (the simulation is fully
  deterministic per seed, so a faithful re-run reproduces every quantity
  exactly); otherwise a relative tolerance applies, calibrated well below
  the fast-grid batch-means CI half-widths so that statistically harmless
  float-order perturbations pass while any model-level drift (e.g. a
  changed timing constant) fails;
- non-finite floats — exact (``inf`` marks saturation and ``NaN`` marks
  empty runs; a point flipping either way is a behavioural change).

Content addressing
------------------
Every golden stores the SHA-256 of its canonical payload and the
directory's ``MANIFEST.json`` indexes experiment id -> digest, so a
tampered or torn golden is detected (status ``corrupt``) before any value
comparison, and two golden sets can be compared by digest alone.

This module is imported lazily by :mod:`repro.verify` (it pulls in the
experiment registry, which imports the simulator).
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from ..experiments.base import EXPERIMENT_IDS, run_experiment
from ..runner.keys import UncacheableConfig, canonicalize, code_version

__all__ = [
    "DEFAULT_RTOL",
    "ExperimentCheck",
    "FieldMismatch",
    "GoldenReport",
    "check",
    "default_goldens_dir",
    "golden_path",
    "record",
]

#: On-disk golden format; bump when the layout changes.
_FORMAT = 1

#: Default relative tolerance for float fields.  The fast-grid delay
#: estimates carry batch-means CI half-widths of roughly 1 % of the mean;
#: 0.1 % passes float-noise-level perturbations while failing any model
#: drift big enough to matter (e.g. t_cold 284.3 -> 290 shifts delays by
#: ~2 %).
DEFAULT_RTOL = 1e-3

#: Absolute floor below which float differences are ignored (pure
#: rounding near zero).
DEFAULT_ATOL = 1e-9


def default_goldens_dir() -> Path:
    """``tests/goldens`` of the repository checkout this package lives in."""
    root = Path(__file__).resolve().parents[3]
    candidate = root / "tests" / "goldens"
    if (root / "tests").is_dir():
        return candidate
    return Path("tests") / "goldens"


def golden_path(directory: Path, experiment_id: str) -> Path:
    return Path(directory) / f"{experiment_id}.json"


def _manifest_path(directory: Path) -> Path:
    return Path(directory) / "MANIFEST.json"


# ----------------------------------------------------------------------
# Recording
# ----------------------------------------------------------------------
def _payload_digest(payload: dict) -> str:
    """Content address: SHA-256 over the canonical JSON of the payload."""
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


def _jsonable_meta(meta: dict) -> Tuple[dict, List[str]]:
    """Canonicalize meta values; skip (and report) unserializable ones."""
    out: Dict[str, object] = {}
    skipped: List[str] = []
    for key in sorted(meta):
        try:
            out[key] = canonicalize(meta[key])
        except UncacheableConfig:
            skipped.append(key)
    return out, skipped


def _snapshot(experiment_id: str, seed: int, fast: bool) -> Dict[str, object]:
    """Run one experiment and reduce it to its golden payload."""
    result = run_experiment(experiment_id, fast=fast, seed=seed)
    meta, skipped = _jsonable_meta(result.meta)
    return {
        "experiment_id": experiment_id,
        "seed": seed,
        "fast": fast,
        "rows": canonicalize(result.rows),
        "meta": meta,
        "meta_skipped": skipped,
    }


def record(
    ids: Optional[Sequence[str]] = None,
    seed: int = 1,
    fast: bool = True,
    directory: Optional[Path] = None,
) -> List[Path]:
    """Record goldens for ``ids`` (default: the e01..e14 suite).

    Runs execute through the active default runner, so caching and
    parallelism apply.  Returns the written paths (goldens + manifest).
    The files contain no timestamps: re-recording unchanged code yields
    byte-identical goldens.
    """
    ids = tuple(ids) if ids is not None else EXPERIMENT_IDS
    directory = Path(directory) if directory is not None else default_goldens_dir()
    directory.mkdir(parents=True, exist_ok=True)
    written: List[Path] = []
    manifest: Dict[str, str] = {}
    for eid in ids:
        payload = _snapshot(eid, seed, fast)
        digest = _payload_digest(payload)
        entry = {"format": _FORMAT, "sha256": digest,
                 "code_version": code_version(), **payload}
        path = golden_path(directory, eid)
        path.write_text(json.dumps(entry, indent=1, sort_keys=True) + "\n")
        written.append(path)
        manifest[eid] = digest
    mpath = _manifest_path(directory)
    existing: Dict[str, str] = {}
    if mpath.exists():
        try:
            existing = json.loads(mpath.read_text()).get("goldens", {})
        except (OSError, ValueError):
            existing = {}
    existing.update(manifest)
    mpath.write_text(json.dumps(
        {"format": _FORMAT, "goldens": dict(sorted(existing.items()))},
        indent=1, sort_keys=True) + "\n")
    written.append(mpath)
    return written


# ----------------------------------------------------------------------
# Checking
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FieldMismatch:
    """One golden-vs-fresh difference."""

    location: str          # e.g. "rows[3].mru"
    golden: object
    actual: object
    detail: str

    def describe(self) -> str:
        return f"{self.location}: golden {self.golden!r}, got {self.actual!r} ({self.detail})"


@dataclass
class ExperimentCheck:
    """Outcome of checking one experiment against its golden."""

    experiment_id: str
    status: str            # ok | mismatch | structure | corrupt | missing
    mismatches: List[FieldMismatch] = field(default_factory=list)
    note: str = ""

    @property
    def ok(self) -> bool:
        return self.status == "ok"


@dataclass
class GoldenReport:
    """All per-experiment outcomes of one ``check`` invocation."""

    checks: List[ExperimentCheck]
    rtol: float

    @property
    def ok(self) -> bool:
        return all(c.ok for c in self.checks)

    @property
    def failed_ids(self) -> List[str]:
        return [c.experiment_id for c in self.checks if not c.ok]

    def format(self, max_mismatches: int = 10) -> str:
        n_ok = sum(c.ok for c in self.checks)
        lines = [
            f"golden check: {n_ok}/{len(self.checks)} experiments ok "
            f"(rtol={self.rtol:g})"
        ]
        for c in self.checks:
            if c.ok:
                continue
            head = f"FAIL {c.experiment_id} [{c.status}]"
            if c.note:
                head += f": {c.note}"
            lines.append(head)
            for m in c.mismatches[:max_mismatches]:
                lines.append(f"  {m.describe()}")
            hidden = len(c.mismatches) - max_mismatches
            if hidden > 0:
                lines.append(f"  ... and {hidden} more mismatches")
        if not self.ok:
            lines.append("affected experiments: " + ", ".join(self.failed_ids))
        return "\n".join(lines)


def _compare(location: str, golden: object, actual: object,
             rtol: float, atol: float,
             out: List[FieldMismatch]) -> None:
    """Recursive field-by-field diff (appends mismatches to ``out``)."""
    # bool is an int subclass: compare it before the numeric branch.
    if isinstance(golden, bool) or isinstance(actual, bool):
        if golden is not actual:
            out.append(FieldMismatch(location, golden, actual, "boolean differs"))
        return
    if isinstance(golden, (int, float)) and isinstance(actual, (int, float)):
        if golden == actual:
            return
        gf, af = float(golden), float(actual)
        if math.isnan(gf) and math.isnan(af):
            return
        if not (math.isfinite(gf) and math.isfinite(af)):
            out.append(FieldMismatch(
                location, golden, actual,
                "non-finite marker differs (saturation/empty-run flip)"))
            return
        if isinstance(golden, int) and isinstance(actual, int):
            out.append(FieldMismatch(location, golden, actual, "exact integer differs"))
            return
        tol = max(atol, rtol * abs(gf))
        if abs(gf - af) > tol:
            rel = abs(gf - af) / abs(gf) if gf else math.inf
            out.append(FieldMismatch(
                location, golden, actual,
                f"relative error {rel:.3%} exceeds tolerance {rtol:g}"))
        return
    if isinstance(golden, list) and isinstance(actual, list):
        if len(golden) != len(actual):
            out.append(FieldMismatch(
                location, f"{len(golden)} items", f"{len(actual)} items",
                "length differs"))
            return
        for i, (g, a) in enumerate(zip(golden, actual)):
            _compare(f"{location}[{i}]", g, a, rtol, atol, out)
        return
    if isinstance(golden, dict) and isinstance(actual, dict):
        gkeys, akeys = set(golden), set(actual)
        for key in sorted(gkeys - akeys):
            out.append(FieldMismatch(f"{location}.{key}", golden[key],
                                     "<absent>", "field disappeared"))
        for key in sorted(akeys - gkeys):
            out.append(FieldMismatch(f"{location}.{key}", "<absent>",
                                     actual[key], "new field"))
        for key in sorted(gkeys & akeys):
            _compare(f"{location}.{key}", golden[key], actual[key],
                     rtol, atol, out)
        return
    if golden != actual:
        out.append(FieldMismatch(location, golden, actual, "value differs"))


def _load_golden(path: Path) -> Tuple[Optional[dict], str]:
    """Load + integrity-verify one golden; returns (entry, error)."""
    try:
        entry = json.loads(path.read_text())
    except FileNotFoundError:
        return None, "missing"
    except (OSError, ValueError) as exc:
        return None, f"unreadable: {exc}"
    if entry.get("format") != _FORMAT:
        return None, f"unknown format {entry.get('format')!r}"
    payload = {k: entry.get(k) for k in
               ("experiment_id", "seed", "fast", "rows", "meta", "meta_skipped")}
    if _payload_digest(payload) != entry.get("sha256"):
        return None, "content digest mismatch (torn or hand-edited golden)"
    return entry, ""


def check(
    ids: Optional[Sequence[str]] = None,
    directory: Optional[Path] = None,
    rtol: float = DEFAULT_RTOL,
    atol: float = DEFAULT_ATOL,
) -> GoldenReport:
    """Re-run experiments and diff against their recorded goldens.

    ``ids`` defaults to every golden present in ``directory``.  Each
    golden's recorded seed/fast flags drive its re-run, so a check always
    regenerates exactly what was snapshotted.
    """
    directory = Path(directory) if directory is not None else default_goldens_dir()
    if ids is None:
        ids = sorted(p.stem for p in directory.glob("*.json")
                     if p.name != "MANIFEST.json")
        if not ids:
            raise FileNotFoundError(
                f"no goldens under {directory}; run `repro verify record` first"
            )
    checks: List[ExperimentCheck] = []
    for eid in ids:
        entry, error = _load_golden(golden_path(directory, eid))
        if entry is None:
            status = "missing" if error == "missing" else "corrupt"
            checks.append(ExperimentCheck(eid, status, note=error))
            continue
        fresh = _snapshot(eid, int(entry["seed"]), bool(entry["fast"]))
        mismatches: List[FieldMismatch] = []
        _compare("rows", entry["rows"], fresh["rows"], rtol, atol, mismatches)
        _compare("meta", entry["meta"], fresh["meta"], rtol, atol, mismatches)
        if entry.get("meta_skipped") != fresh["meta_skipped"]:
            mismatches.append(FieldMismatch(
                "meta_skipped", entry.get("meta_skipped"),
                fresh["meta_skipped"], "serializable meta keys changed"))
        if mismatches:
            structural = all("differs" not in m.detail and "error" not in m.detail
                             for m in mismatches)
            checks.append(ExperimentCheck(
                eid, "structure" if structural else "mismatch", mismatches))
        else:
            checks.append(ExperimentCheck(eid, "ok"))
    return GoldenReport(checks=checks, rtol=rtol)
