"""Verification tier: goldens, runtime invariants, statistical equivalence.

Three layers of correctness tooling on top of the simulator and runner:

- :mod:`repro.verify.golden` — snapshot every experiment's fast-grid
  structured output to content-addressed JSON goldens and diff fresh
  re-runs against them (``repro verify record`` / ``repro verify check``);
- :mod:`repro.verify.invariants` — :class:`InvariantChecker`, an online
  runtime checker the simulator wires in under
  ``SystemConfig(check_invariants=True)`` (conservation, busy-interval
  non-overlap, causality, lock mutual exclusion, delay decomposition);
- :mod:`repro.verify.equivalence` — batch-means-CI equivalence of two
  result sets across seeds, the robust counterpart of the runner's
  bit-identity guarantees.

See ``docs/TESTING.md`` for how these compose into the test tiers.

Only :mod:`~repro.verify.invariants` is imported eagerly: it has no
dependencies inside the package, so :mod:`repro.sim.system` can import it
without cycles.  The golden and equivalence layers (which pull in the
experiment registry and metrics) load lazily on first attribute access.
"""

from __future__ import annotations

import importlib

from .invariants import InvariantChecker, InvariantViolation

__all__ = [
    "InvariantChecker",
    "InvariantViolation",
    "assert_equivalent",
    "bit_identical",
    "check_goldens",
    "compare_result_sets",
    "equivalence",
    "golden",
    "record_goldens",
]

#: name -> (submodule, attribute) for lazy re-exports.
_LAZY = {
    "assert_equivalent": ("equivalence", "assert_equivalent"),
    "bit_identical": ("equivalence", "bit_identical"),
    "compare_result_sets": ("equivalence", "compare_result_sets"),
    "check_goldens": ("golden", "check"),
    "record_goldens": ("golden", "record"),
}


def __getattr__(name: str) -> object:
    if name in ("equivalence", "golden"):
        return importlib.import_module(f".{name}", __name__)
    if name in _LAZY:
        module_name, attr = _LAZY[name]
        module = importlib.import_module(f".{module_name}", __name__)
        return getattr(module, attr)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
