"""Statistical equivalence of two sets of simulation results.

The runner's parallel and cached paths are *bit-identical* to serial
execution and the tests spot-check that.  Bit identity is, however, a
fragile property to lean on alone: a legitimate refactor (different
summation order, a vectorized metric) may perturb low-order float bits
while leaving the simulation statistically unchanged.  This module
provides the complementary, robust notion: two result sets are
**statistically equivalent** when, for every metric of interest, the
confidence intervals of their replication means overlap.

The CIs come from :func:`repro.analysis.stats.batch_means_ci` applied to
the per-seed metric values — across independent seeds the replications
are i.i.d., so batch means degenerate to the classical replication/
deletion t-interval (Law & Kelton §9.4), which is exactly what the
guarded ``batch_means_ci`` computes for short series.

Typical uses (see ``tests/verify/test_equivalence.py``):

- assert parallel sweep execution == serial across a seed set,
- assert cache round-trips preserve results,
- compare a refactored model against a reference result set.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from ..analysis.stats import batch_means_ci
from ..sim.metrics import SimulationSummary

__all__ = [
    "DEFAULT_METRICS",
    "EquivalenceReport",
    "MetricEquivalence",
    "assert_equivalent",
    "bit_identical",
    "ci_overlap",
    "compare_result_sets",
    "replication_ci",
]

#: Metrics compared by default: the paper's response variable and the
#: quantities most likely to drift under a behavioural change.
DEFAULT_METRICS: Tuple[str, ...] = (
    "mean_delay_us",
    "mean_queueing_us",
    "mean_exec_us",
    "throughput_pps",
)


def ci_overlap(ci_a: Tuple[float, float], ci_b: Tuple[float, float],
               slack: float = 0.0) -> bool:
    """Whether two (lo, hi) intervals intersect (within ``slack``).

    Degenerate zero-width intervals (identical replications, e.g. under
    common random numbers) overlap iff the point estimates agree.
    """
    return ci_a[0] <= ci_b[1] + slack and ci_b[0] <= ci_a[1] + slack


def replication_ci(summaries: Sequence[SimulationSummary], metric: str,
                   confidence: float = 0.95) -> Tuple[float, float]:
    """CI for a summary metric across independent replications (seeds)."""
    values = np.array([getattr(s, metric) for s in summaries], dtype=np.float64)
    return batch_means_ci(values, n_batches=max(2, len(values)),
                          confidence=confidence)


@dataclass(frozen=True)
class MetricEquivalence:
    """Verdict for one metric: the two CIs and whether they overlap."""

    metric: str
    mean_a: float
    mean_b: float
    ci_a: Tuple[float, float]
    ci_b: Tuple[float, float]
    overlap: bool

    def describe(self) -> str:
        mark = "ok  " if self.overlap else "FAIL"
        return (
            f"{mark} {self.metric}: "
            f"A mean {self.mean_a:.4g} CI [{self.ci_a[0]:.4g}, {self.ci_a[1]:.4g}]"
            f" vs B mean {self.mean_b:.4g} CI [{self.ci_b[0]:.4g}, {self.ci_b[1]:.4g}]"
        )


@dataclass
class EquivalenceReport:
    """All per-metric verdicts for one A-vs-B comparison."""

    label_a: str
    label_b: str
    n_a: int
    n_b: int
    comparisons: List[MetricEquivalence]

    @property
    def equivalent(self) -> bool:
        return all(c.overlap for c in self.comparisons)

    def format(self) -> str:
        verdict = "EQUIVALENT" if self.equivalent else "NOT equivalent"
        head = (
            f"{self.label_a} (n={self.n_a}) vs {self.label_b} (n={self.n_b}): "
            f"{verdict}"
        )
        return "\n".join([head] + ["  " + c.describe() for c in self.comparisons])


def compare_result_sets(
    set_a: Sequence[SimulationSummary],
    set_b: Sequence[SimulationSummary],
    metrics: Sequence[str] = DEFAULT_METRICS,
    confidence: float = 0.95,
    labels: Tuple[str, str] = ("A", "B"),
) -> EquivalenceReport:
    """Compare two replication sets metric-by-metric via CI overlap.

    Each set is a list of summaries from independent seeds of the *same*
    configuration family.  NaN means (e.g. both sets saturated) count as
    equivalent only if both sides are NaN.
    """
    if not set_a or not set_b:
        raise ValueError("both result sets must be non-empty")
    comparisons: List[MetricEquivalence] = []
    for metric in metrics:
        mean_a = float(np.mean([getattr(s, metric) for s in set_a]))
        mean_b = float(np.mean([getattr(s, metric) for s in set_b]))
        ci_a = replication_ci(set_a, metric, confidence)
        ci_b = replication_ci(set_b, metric, confidence)
        if math.isnan(mean_a) or math.isnan(mean_b):
            overlap = math.isnan(mean_a) and math.isnan(mean_b)
        else:
            overlap = ci_overlap(ci_a, ci_b)
        comparisons.append(MetricEquivalence(
            metric=metric, mean_a=mean_a, mean_b=mean_b,
            ci_a=ci_a, ci_b=ci_b, overlap=overlap,
        ))
    return EquivalenceReport(
        label_a=labels[0], label_b=labels[1],
        n_a=len(set_a), n_b=len(set_b),
        comparisons=comparisons,
    )


def assert_equivalent(
    set_a: Sequence[SimulationSummary],
    set_b: Sequence[SimulationSummary],
    metrics: Sequence[str] = DEFAULT_METRICS,
    confidence: float = 0.95,
    labels: Tuple[str, str] = ("A", "B"),
) -> EquivalenceReport:
    """Raise ``AssertionError`` (with the report) unless CIs all overlap."""
    report = compare_result_sets(set_a, set_b, metrics=metrics,
                                 confidence=confidence, labels=labels)
    if not report.equivalent:
        raise AssertionError(report.format())
    return report


def bit_identical(set_a: Sequence[SimulationSummary],
                  set_b: Sequence[SimulationSummary]) -> bool:
    """Strict field-for-field equality (the runner's determinism contract).

    Stronger than :func:`compare_result_sets`; use it where exact replay
    is guaranteed (same seed, same code), e.g. cached == fresh.
    """
    if len(set_a) != len(set_b):
        return False
    return all(a == b for a, b in zip(set_a, set_b))
