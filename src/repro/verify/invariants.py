"""Online runtime invariant checking for the simulator.

Enabled per run with ``SystemConfig(check_invariants=True)``: the
:class:`~repro.sim.system.NetworkProcessingSystem` then builds an
:class:`InvariantChecker` and threads its hooks through the engine, the
dispatchers, the lock model and the metrics collector.  The checker raises
:class:`InvariantViolation` at the *first* violated invariant — the point
of an online check is that the failure fires with the offending event
still on the stack, instead of surfacing later as a silently wrong mean.

Invariants enforced
-------------------
clock monotonicity
    the engine never fires an event earlier than the previous one
    (hooked into :meth:`repro.sim.engine.Simulator.step`);
conservation
    every arrived packet is completed, queued, or in service — checked
    incrementally through the per-packet hooks and cross-checked against
    the :class:`~repro.sim.metrics.MetricsCollector` counters and the
    dispatcher queue at end of run;
busy-interval non-overlap
    a processor never serves two packets at once — the online promotion
    of :meth:`repro.sim.trace.ExecutionTracer.check_no_overlap`;
causality
    ``arrival <= service_start <= completion`` for every packet;
lock mutual exclusion
    granted critical sections of each (stage) lock never overlap
    (hooked into :meth:`repro.sim.locks.SerialLock.reserve`);
delay decomposition
    ``delay >= exec_time`` and the busy span equals
    ``lock_wait + exec_time`` exactly.

When ``check_invariants`` is off (the default) none of these hooks exist:
the wiring reduces to ``is None`` branches on paths that each run a
handful of times per packet, so the disabled checker costs nothing
measurable.

This module deliberately imports nothing from the rest of the package so
it can be wired into :mod:`repro.sim` without import cycles.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Optional, Protocol


class _PacketLike(Protocol):
    """Structural view of :class:`repro.sim.entities.Packet` (this module
    imports nothing from the rest of the package to stay cycle-free)."""

    packet_id: int
    stream_id: int
    arrival_us: float
    service_start_us: float
    lock_wait_us: float
    exec_time_us: float


class _MetricsLike(Protocol):
    arrivals: int
    completions: int
    in_flight: int


class _ProcessorLike(Protocol):
    busy: bool


__all__ = ["InvariantChecker", "InvariantViolation"]


class InvariantViolation(RuntimeError):
    """A runtime invariant of the simulation was violated."""


class InvariantChecker:
    """Accumulates per-event evidence and fails fast on contradiction.

    ``epsilon_us`` absorbs float rounding in interval comparisons (the
    engine schedules with exact float arithmetic, so the default can be
    tiny).  ``checks`` counts individual assertions evaluated — useful to
    prove the checker actually ran.
    """

    def __init__(self, epsilon_us: float = 1e-6) -> None:
        if epsilon_us < 0:
            raise ValueError("epsilon_us must be non-negative")
        self.epsilon_us = epsilon_us
        self.checks: int = 0
        self.arrivals: int = 0
        self.completions: int = 0
        self.in_flight: int = 0
        self.dispatches: int = 0
        self.migrations: int = 0
        self._clock_us: float = 0.0
        #: stream id -> processor that last *completed* it (mirrors the
        #: dispatcher's migration bookkeeping, which also updates at
        #: completion — so the two migration counts must agree exactly).
        self._stream_last_proc: Dict[int, int] = {}
        #: processor id -> end of its current/last booked busy interval.
        self._busy_until: Dict[int, float] = {}
        #: processor id -> packet id currently in service.
        self._serving: Dict[int, int] = {}
        #: lock id -> end of its last granted critical section.
        self._lock_free_at: Dict[int, float] = {}

    # ------------------------------------------------------------------
    def _fail(self, message: str) -> None:
        raise InvariantViolation(message)

    # ------------------------------------------------------------------
    # Engine hook
    # ------------------------------------------------------------------
    def on_event(self, time_us: float) -> None:
        """Engine fired an event at ``time_us`` (clock monotonicity)."""
        self.checks += 1
        if time_us < self._clock_us - self.epsilon_us:
            self._fail(
                f"clock went backwards: event at {time_us} after event at "
                f"{self._clock_us}"
            )
        if self._clock_us < time_us:
            self._clock_us = time_us

    # ------------------------------------------------------------------
    # Packet lifecycle hooks
    # ------------------------------------------------------------------
    def on_arrival(self, packet: _PacketLike, now_us: float) -> None:
        self.checks += 1
        self.arrivals += 1
        self.in_flight += 1
        if not (abs(packet.arrival_us - now_us) <= self.epsilon_us):
            self._fail(
                f"packet {packet.packet_id} stamped arrival "
                f"{packet.arrival_us} at simulation time {now_us}"
            )

    def on_service_start(self, proc_id: int, packet: _PacketLike, now_us: float,
                         lock_wait_us: float, exec_time_us: float) -> None:
        self.checks += 1
        self.dispatches += 1
        last_sp = self._stream_last_proc.get(packet.stream_id)
        if last_sp is not None and last_sp != proc_id:
            self.migrations += 1
        if packet.arrival_us > now_us + self.epsilon_us:
            self._fail(
                f"causality: packet {packet.packet_id} starts service at "
                f"{now_us} before its arrival at {packet.arrival_us}"
            )
        if lock_wait_us < 0 or exec_time_us < 0 or math.isnan(lock_wait_us) \
                or math.isnan(exec_time_us):
            self._fail(
                f"packet {packet.packet_id}: negative or NaN service parts "
                f"(lock_wait={lock_wait_us}, exec={exec_time_us})"
            )
        if proc_id in self._serving:
            self._fail(
                f"processor {proc_id} began packet {packet.packet_id} while "
                f"still serving packet {self._serving[proc_id]}"
            )
        busy_until = self._busy_until.get(proc_id, -math.inf)
        if now_us < busy_until - self.epsilon_us:
            self._fail(
                f"processor {proc_id} double-booked: service starting at "
                f"{now_us} overlaps busy interval ending at {busy_until}"
            )
        self._serving[proc_id] = packet.packet_id
        self._busy_until[proc_id] = now_us + lock_wait_us + exec_time_us

    def on_completion(self, packet: _PacketLike, proc_id: int,
                      now_us: float) -> None:
        self.checks += 1
        self.completions += 1
        self.in_flight -= 1
        if self.in_flight < 0:
            self._fail(
                f"conservation: completion of packet {packet.packet_id} "
                "makes in-flight count negative"
            )
        serving = self._serving.pop(proc_id, None)
        if serving != packet.packet_id:
            self._fail(
                f"processor {proc_id} completed packet {packet.packet_id} "
                f"but was serving {serving}"
            )
        self._stream_last_proc[packet.stream_id] = proc_id
        eps = self.epsilon_us
        if not (packet.arrival_us <= packet.service_start_us + eps
                and packet.service_start_us <= now_us + eps):
            self._fail(
                f"causality: packet {packet.packet_id} has arrival "
                f"{packet.arrival_us}, service_start {packet.service_start_us}, "
                f"completion {now_us}"
            )
        delay_us = now_us - packet.arrival_us
        if delay_us < packet.exec_time_us - eps:
            self._fail(
                f"packet {packet.packet_id}: delay {delay_us} < exec_time "
                f"{packet.exec_time_us}"
            )
        span = now_us - packet.service_start_us
        expected = packet.lock_wait_us + packet.exec_time_us
        if abs(span - expected) > eps:
            self._fail(
                f"packet {packet.packet_id}: busy span {span} != lock_wait "
                f"+ exec_time = {expected}"
            )

    # ------------------------------------------------------------------
    # Lock hook
    # ------------------------------------------------------------------
    def on_lock_reservation(self, lock_id: int, start_us: float,
                            hold_us: float) -> None:
        self.checks += 1
        if hold_us < 0:
            self._fail(f"lock {lock_id}: negative hold {hold_us}")
        free_at = self._lock_free_at.get(lock_id, -math.inf)
        if start_us < free_at - self.epsilon_us:
            self._fail(
                f"lock {lock_id} mutual exclusion violated: critical section "
                f"at {start_us} overlaps one ending at {free_at}"
            )
        self._lock_free_at[lock_id] = start_us + hold_us

    # ------------------------------------------------------------------
    # End-of-run cross-checks
    # ------------------------------------------------------------------
    def at_end(self, metrics: _MetricsLike, dispatcher_queued: int,
               processors: Iterable[_ProcessorLike],
               dispatcher_migrations: Optional[int] = None) -> None:
        """Conservation against the independent metrics/dispatcher state.

        ``dispatcher_migrations`` (when given) is the dispatcher's own
        migration counter; it must equal the checker's independent count.
        """
        self.checks += 1
        if self.migrations > self.dispatches:
            self._fail(
                f"conservation: {self.migrations} migrations exceed "
                f"{self.dispatches} dispatches"
            )
        if (dispatcher_migrations is not None
                and dispatcher_migrations != self.migrations):
            self._fail(
                f"migration accounting: dispatcher counted "
                f"{dispatcher_migrations}, checker counted {self.migrations}"
            )
        if self.arrivals != metrics.arrivals:
            self._fail(
                f"conservation: checker saw {self.arrivals} arrivals, "
                f"metrics recorded {metrics.arrivals}"
            )
        if self.completions != metrics.completions:
            self._fail(
                f"conservation: checker saw {self.completions} completions, "
                f"metrics recorded {metrics.completions}"
            )
        if metrics.arrivals != metrics.completions + metrics.in_flight:
            self._fail(
                f"conservation: arrivals ({metrics.arrivals}) != completed "
                f"({metrics.completions}) + in-flight ({metrics.in_flight})"
            )
        n_busy = sum(1 for p in processors if p.busy)
        if dispatcher_queued + n_busy != self.in_flight:
            self._fail(
                f"conservation: {self.in_flight} packets in flight but "
                f"{dispatcher_queued} queued + {n_busy} in service"
            )

    # ------------------------------------------------------------------
    def summary(self) -> Dict[str, int]:
        """Counters for reports: checks run and packets accounted."""
        return {
            "checks": self.checks,
            "arrivals": self.arrivals,
            "completions": self.completions,
            "in_flight": self.in_flight,
            "dispatches": self.dispatches,
            "migrations": self.migrations,
        }
