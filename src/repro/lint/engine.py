"""Discovery, filtering and reporting: the ``repro lint`` driver.

:func:`lint_paths` walks the requested files/directories, parses every
``.py`` file **once** into a shared cache, runs the per-file rules
(RPR001–003, RPR006, and RPR007 on hot-path batch modules) against the
cached ASTs, and — when the lint targets include ``sim/system.py`` (i.e.
the package itself is being linted, not an isolated fixture) — runs the
project-level cross-checks (RPR004–005, RPR012) and the interprocedural
flow-analysis rules (RPR008–010) as well, reusing the same cache.  Inline
suppression comments then filter everything uniformly, any suppression
comment that stopped matching a finding is reported as RPR011, and
``--select``/``--ignore`` filters apply last.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence

from .config import (
    CLOCK_SEAM_RELPATHS,
    HOT_PATH_BATCH_RELPATHS,
    RNG_EXEMPT_RELPATHS,
    default_package_root,
    default_repo_root,
    is_result_affecting,
    relpath_in_package,
)
from .findings import Finding, RULES
from .flow import (
    build_project_index,
    check_config_read_parity,
    check_metrics_schema_parity,
    check_rng_provenance,
)
from .project import (
    check_cache_key_conformance,
    check_registry_conformance,
    check_warm_state_ledger,
)
from .rules import run_file_rules
from .suppressions import (
    SuppressionSite,
    codes_by_line,
    is_suppressed,
    suppression_sites,
)

__all__ = ["lint_paths", "lint_file", "render_report", "render_github",
           "parse_code_list"]


def parse_code_list(raw: Optional[str]) -> Optional[FrozenSet[str]]:
    """Parse a ``--select``/``--ignore`` value like ``"RPR001,RPR003"``.

    Raises :class:`ValueError` on unknown codes so typos fail loudly.
    """
    if raw is None:
        return None
    codes = frozenset(c.strip().upper() for c in raw.split(",") if c.strip())
    unknown = sorted(codes - set(RULES))
    if unknown:
        raise ValueError(
            f"unknown rule code(s) {', '.join(unknown)}; "
            f"known: {', '.join(sorted(RULES))}"
        )
    return codes


def _discover(paths: Sequence[Path]) -> List[Path]:
    files: List[Path] = []
    seen = set()
    for path in paths:
        if path.is_dir():
            candidates: Iterable[Path] = sorted(path.rglob("*.py"))
        else:
            candidates = [path]
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                files.append(candidate)
    return files


@dataclass
class _ParsedFile:
    """One lint target, parsed exactly once and shared by every rule."""

    path: Path
    source: str = ""
    tree: Optional[ast.Module] = None
    error: Optional[Finding] = None
    suppressions: Dict[int, FrozenSet[str]] = field(default_factory=dict)
    sites: List[SuppressionSite] = field(default_factory=list)


def _parse_file(path: Path) -> _ParsedFile:
    parsed = _ParsedFile(path=path)
    try:
        parsed.source = path.read_text()
    except (OSError, UnicodeDecodeError) as exc:
        parsed.error = Finding(path=str(path), line=1, col=0, code="RPR000",
                               message=f"cannot read file: {exc}")
        return parsed
    try:
        parsed.tree = ast.parse(parsed.source, filename=str(path))
    except SyntaxError as exc:
        parsed.error = Finding(path=str(path), line=exc.lineno or 1,
                               col=(exc.offset or 1) - 1, code="RPR000",
                               message=f"syntax error: {exc.msg}")
    parsed.sites = suppression_sites(parsed.source)
    parsed.suppressions = codes_by_line(parsed.sites)
    return parsed


def _file_findings(parsed: _ParsedFile, relpath: str) -> List[Finding]:
    """Raw (pre-suppression) per-file findings for one parsed target."""
    if parsed.error is not None:
        return [parsed.error]
    return run_file_rules(
        str(parsed.path), parsed.source,
        result_affecting=is_result_affecting(relpath),
        rng_exempt=relpath in RNG_EXEMPT_RELPATHS,
        hot_path=relpath in HOT_PATH_BATCH_RELPATHS,
        clock_seam=relpath in CLOCK_SEAM_RELPATHS,
        tree=parsed.tree,
    )


def _unused_suppressions(parsed: _ParsedFile,
                         raw: Sequence[Finding]) -> List[Finding]:
    """RPR011 findings: suppression comments in ``parsed`` matched by no
    raw finding."""
    out: List[Finding] = []
    for site in parsed.sites:
        used = any(
            f.code in site.codes and f.line in site.covered_lines
            for f in raw
        )
        if not used:
            codes = ",".join(sorted(site.codes))
            out.append(Finding(
                path=str(parsed.path), line=site.line, col=0, code="RPR011",
                message=f"unused suppression: ignore[{codes}] no longer "
                        "silences any finding; delete the comment so the "
                        "suppression baseline stays honest"))
    return out


def lint_file(path: Path, *, package_root: Optional[Path] = None,
              relpath: Optional[str] = None) -> List[Finding]:
    """Run the per-file rules on one file, applying inline suppressions
    and reporting unused suppression comments (RPR011).

    ``relpath`` overrides the package-relative location used for scoping —
    fixture tests use it to lint a temp file *as if* it lived at, say,
    ``sim/foo.py``.
    """
    root = package_root if package_root is not None else default_package_root()
    if relpath is None:
        relpath = relpath_in_package(path, root)
    parsed = _parse_file(path)
    raw = _file_findings(parsed, relpath)
    findings = [f for f in raw
                if not is_suppressed(parsed.suppressions, f.line, f.code)]
    findings.extend(_unused_suppressions(parsed, raw))
    return findings


def lint_paths(
    paths: Optional[Sequence[Path]] = None,
    *,
    select: Optional[FrozenSet[str]] = None,
    ignore: Optional[FrozenSet[str]] = None,
    package_root: Optional[Path] = None,
    repo_root: Optional[Path] = None,
) -> List[Finding]:
    """Lint files/directories and return sorted, filtered findings."""
    root = package_root if package_root is not None else default_package_root()
    repo = repo_root if repo_root is not None else default_repo_root()
    targets = [Path(p) for p in paths] if paths else [root]
    files = _discover(targets)

    parsed_by_resolved: Dict[Path, _ParsedFile] = {}
    raw: List[Finding] = []
    for path in files:
        parsed = _parse_file(path)
        parsed_by_resolved[path.resolve()] = parsed
        raw.extend(_file_findings(parsed, relpath_in_package(path, root)))

    def _wanted(*codes: str) -> bool:
        # RPR011 (unused suppression) is judged against the *full* raw
        # finding set, so selecting it disables the rule gating.
        if select is None or "RPR011" in select:
            return True
        return bool(select & set(codes))

    system_py = (root / "sim" / "system.py").resolve()
    if system_py in parsed_by_resolved:
        if _wanted("RPR004", "RPR005"):
            raw.extend(check_cache_key_conformance(
                root / "sim" / "system.py", root / "runner" / "keys.py"))
            raw.extend(check_registry_conformance(
                root / "experiments",
                root / "experiments" / "base.py",
                repo / "tests" / "goldens" / "MANIFEST.json"))
        if _wanted("RPR008", "RPR009"):
            # Interprocedural rules share the parse cache: nothing under
            # the package root is parsed a second time.
            index = build_project_index(
                root,
                trees={p: f.tree for p, f in parsed_by_resolved.items()
                       if f.tree is not None},
                sources={p: f.source for p, f in parsed_by_resolved.items()},
            )
            raw.extend(check_config_read_parity(root, index=index))
            raw.extend(check_rng_provenance(root, index=index))
        if _wanted("RPR010"):
            raw.extend(check_metrics_schema_parity(
                root / "sim" / "metrics.py",
                root / "sim" / "batch.py",
                repo / "tests" / "goldens"))
        if _wanted("RPR012"):
            raw.extend(check_warm_state_ledger(root / "runner" / "backends"))

    findings: List[Finding] = []
    for f in raw:
        parsed = parsed_by_resolved.get(Path(f.path).resolve())
        if parsed is not None and \
                is_suppressed(parsed.suppressions, f.line, f.code):
            continue
        findings.append(f)

    raw_by_resolved: Dict[Path, List[Finding]] = {}
    for f in raw:
        raw_by_resolved.setdefault(Path(f.path).resolve(), []).append(f)
    for resolved, parsed in parsed_by_resolved.items():
        findings.extend(_unused_suppressions(
            parsed, raw_by_resolved.get(resolved, [])))

    if select is not None:
        findings = [f for f in findings if f.code in select]
    if ignore is not None:
        findings = [f for f in findings if f.code not in ignore]
    return sorted(findings, key=Finding.sort_key)


def render_report(findings: Sequence[Finding]) -> str:
    """Human-readable report: one line per finding plus a summary line."""
    lines = [f.render() for f in findings]
    if findings:
        by_code: dict = {}
        for f in findings:
            by_code[f.code] = by_code.get(f.code, 0) + 1
        counts = ", ".join(f"{code} x{n}" for code, n in sorted(by_code.items()))
        lines.append(f"found {len(findings)} problem(s): {counts}")
    else:
        lines.append("all clean")
    return "\n".join(lines)


def _gh_escape_data(value: str) -> str:
    return value.replace("%", "%25").replace("\r", "%0D").replace("\n", "%0A")


def _gh_escape_property(value: str) -> str:
    return (_gh_escape_data(value)
            .replace(":", "%3A").replace(",", "%2C"))


def render_github(findings: Sequence[Finding],
                  repo_root: Optional[Path] = None) -> str:
    """GitHub Actions workflow annotations, one ``::error`` per finding.

    Paths are emitted repo-relative when possible so the annotations
    attach to files in the PR diff view.
    """
    repo = (repo_root if repo_root is not None else default_repo_root()).resolve()
    lines: List[str] = []
    for f in findings:
        path = Path(f.path)
        try:
            rel = path.resolve().relative_to(repo).as_posix()
        except ValueError:
            rel = f.path
        lines.append(
            f"::error file={_gh_escape_property(rel)},line={f.line},"
            f"col={f.col + 1},title={_gh_escape_property(f.code)}::"
            f"{_gh_escape_data(f.code + ' ' + f.message)}"
        )
    if not findings:
        lines.append("::notice::repro lint: all clean")
    return "\n".join(lines)
