"""Discovery, filtering and reporting: the ``repro lint`` driver.

:func:`lint_paths` walks the requested files/directories, runs the
per-file rules (RPR001–003, RPR006, and RPR007 on hot-path batch
modules) on each ``.py`` file, applies inline
suppression comments and ``--select``/``--ignore`` filters, and — when the
lint targets include ``sim/system.py`` (i.e. the package itself is being
linted, not an isolated fixture) — runs the project-level cross-checks
(RPR004–005) as well.
"""

from __future__ import annotations

from pathlib import Path
from typing import FrozenSet, Iterable, List, Optional, Sequence

from .config import (
    HOT_PATH_BATCH_RELPATHS,
    RNG_EXEMPT_RELPATHS,
    default_package_root,
    default_repo_root,
    is_result_affecting,
    relpath_in_package,
)
from .findings import Finding, RULES
from .project import check_cache_key_conformance, check_registry_conformance
from .rules import run_file_rules
from .suppressions import is_suppressed, suppressed_codes

__all__ = ["lint_paths", "lint_file", "render_report", "parse_code_list"]


def parse_code_list(raw: Optional[str]) -> Optional[FrozenSet[str]]:
    """Parse a ``--select``/``--ignore`` value like ``"RPR001,RPR003"``.

    Raises :class:`ValueError` on unknown codes so typos fail loudly.
    """
    if raw is None:
        return None
    codes = frozenset(c.strip().upper() for c in raw.split(",") if c.strip())
    unknown = sorted(codes - set(RULES))
    if unknown:
        raise ValueError(
            f"unknown rule code(s) {', '.join(unknown)}; "
            f"known: {', '.join(sorted(RULES))}"
        )
    return codes


def _discover(paths: Sequence[Path]) -> List[Path]:
    files: List[Path] = []
    seen = set()
    for path in paths:
        if path.is_dir():
            candidates: Iterable[Path] = sorted(path.rglob("*.py"))
        else:
            candidates = [path]
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                files.append(candidate)
    return files


def lint_file(path: Path, *, package_root: Optional[Path] = None,
              relpath: Optional[str] = None) -> List[Finding]:
    """Run the per-file rules on one file, applying inline suppressions.

    ``relpath`` overrides the package-relative location used for scoping —
    fixture tests use it to lint a temp file *as if* it lived at, say,
    ``sim/foo.py``.
    """
    root = package_root if package_root is not None else default_package_root()
    if relpath is None:
        relpath = relpath_in_package(path, root)
    try:
        source = path.read_text()
    except (OSError, UnicodeDecodeError) as exc:
        return [Finding(path=str(path), line=1, col=0, code="RPR000",
                        message=f"cannot read file: {exc}")]
    findings = run_file_rules(
        str(path), source,
        result_affecting=is_result_affecting(relpath),
        rng_exempt=relpath in RNG_EXEMPT_RELPATHS,
        hot_path=relpath in HOT_PATH_BATCH_RELPATHS,
    )
    suppressions = suppressed_codes(source)
    return [f for f in findings
            if not is_suppressed(suppressions, f.line, f.code)]


def lint_paths(
    paths: Optional[Sequence[Path]] = None,
    *,
    select: Optional[FrozenSet[str]] = None,
    ignore: Optional[FrozenSet[str]] = None,
    package_root: Optional[Path] = None,
    repo_root: Optional[Path] = None,
) -> List[Finding]:
    """Lint files/directories and return sorted, filtered findings."""
    root = package_root if package_root is not None else default_package_root()
    repo = repo_root if repo_root is not None else default_repo_root()
    targets = [Path(p) for p in paths] if paths else [root]
    files = _discover(targets)

    findings: List[Finding] = []
    for path in files:
        findings.extend(lint_file(path, package_root=root))

    system_py = (root / "sim" / "system.py").resolve()
    if any(f.resolve() == system_py for f in files):
        findings.extend(check_cache_key_conformance(
            root / "sim" / "system.py", root / "runner" / "keys.py"))
        findings.extend(check_registry_conformance(
            root / "experiments",
            root / "experiments" / "base.py",
            repo / "tests" / "goldens" / "MANIFEST.json"))

    if select is not None:
        findings = [f for f in findings if f.code in select]
    if ignore is not None:
        findings = [f for f in findings if f.code not in ignore]
    return sorted(findings, key=Finding.sort_key)


def render_report(findings: Sequence[Finding]) -> str:
    """Human-readable report: one line per finding plus a summary line."""
    lines = [f.render() for f in findings]
    if findings:
        by_code: dict = {}
        for f in findings:
            by_code[f.code] = by_code.get(f.code, 0) + 1
        counts = ", ".join(f"{code} x{n}" for code, n in sorted(by_code.items()))
        lines.append(f"found {len(findings)} problem(s): {counts}")
    else:
        lines.append("all clean")
    return "\n".join(lines)
