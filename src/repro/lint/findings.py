"""Finding model shared by every lint rule.

A :class:`Finding` is one rule violation anchored to a file position; the
engine collects, filters (``--select``/``--ignore``/suppression comments)
and renders them.  Codes are stable identifiers (``RPR001``...) documented
in ``docs/LINTING.md``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

__all__ = ["Finding", "RULES", "is_known_code"]

#: code -> one-line rule summary (the catalogue; see docs/LINTING.md).
RULES: Dict[str, str] = {
    "RPR001": "determinism: unseeded/ambient randomness or wall-clock reads "
              "in result-affecting code",
    "RPR002": "ordering: iteration over an unordered source (set, directory "
              "listing) feeding results",
    "RPR003": "units: time-valued name lacks a unit suffix, or arithmetic "
              "mixes unit suffixes",
    "RPR004": "cache-key: SystemConfig field neither in the content key nor "
              "on the observability exclusion list",
    "RPR005": "registry: experiment module not registered or missing its "
              "golden snapshot",
    "RPR006": "pickle: a process-pool submission target must be a "
              "module-level function (lambdas and nested defs break worker "
              "dispatch or silently run serially)",
    "RPR007": "hot-path: per-event scalar dispatch (per-packet model call, "
              "metrics hook or calendar insertion) inside a batched hot-path "
              "module; use the batch APIs",
    "RPR008": "engine parity: a SystemConfig/params field read in the scalar "
              "path is never read by the fused batched engine and is not "
              "declared in _BATCH_IRRELEVANT_FIELDS",
    "RPR009": "rng provenance: a random draw in result-affecting code does "
              "not trace back to the blessed sim/rng.py derivation point, or "
              "an RNG-consuming policy has neither a fused batched path nor "
              "a _SCALAR_FALLBACK_POLICIES entry",
    "RPR010": "metrics parity: the scalar summarize() fold and the batched "
              "columnar fold-back disagree on the summary schema, or a "
              "summary key is covered by no golden field",
    "RPR011": "suppression hygiene: a repro-lint ignore comment no longer "
              "suppresses any finding",
    "RPR012": "warm-state ledger: a module-level mutable cache in "
              "runner/backends/ must be registered in _WARM_LEDGER with a "
              "reason and cleared by reset_warm_state(), so every piece of "
              "state a warm worker can carry across tasks is auditable",
    "RPR013": "clock seam: coordinator/lease logic reads the wall clock "
              "directly instead of taking the injectable clock seam "
              "(DistributedOptions.clock), so lease expiry becomes "
              "untestable and chaos runs unreplayable",
}


def is_known_code(code: str) -> bool:
    return code in RULES


@dataclass(frozen=True)
class Finding:
    """One rule violation at a file position (1-based line, 0-based col)."""

    path: str
    line: int
    col: int
    code: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"

    def sort_key(self) -> Tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.code)
