"""Inline suppression comments.

A finding is silenced by a comment of the form::

    x = np.random.default_rng(seed)  # repro-lint: ignore[RPR001] seeded per run

either on the offending line itself or as a standalone comment on the line
immediately above.  The bracket must name the code(s) being suppressed
(comma-separated); a bare ``# repro-lint: ignore`` matches nothing, so
suppressions stay auditable.  Everything after the bracket is the
human-readable justification (required by convention; see
``docs/LINTING.md`` for the suppression policy).
"""

from __future__ import annotations

import io
import re
import tokenize
from typing import Dict, FrozenSet

__all__ = ["suppressed_codes", "is_suppressed"]

_PATTERN = re.compile(r"#\s*repro-lint:\s*ignore\[([A-Z0-9,\s]+)\]")


def suppressed_codes(source: str) -> Dict[int, FrozenSet[str]]:
    """Map line number -> codes suppressed on that line.

    A standalone suppression comment (no code on its line) also covers the
    next line, so multi-code or long-reason suppressions can sit above the
    statement they annotate.
    """
    out: Dict[int, FrozenSet[str]] = {}
    standalone: Dict[int, FrozenSet[str]] = {}
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return out
    code_lines = {
        t.start[0]
        for t in tokens
        if t.type not in (tokenize.COMMENT, tokenize.NL, tokenize.NEWLINE,
                          tokenize.INDENT, tokenize.DEDENT, tokenize.ENDMARKER)
    }
    for tok in tokens:
        if tok.type != tokenize.COMMENT:
            continue
        match = _PATTERN.search(tok.string)
        if not match:
            continue
        codes = frozenset(
            c.strip() for c in match.group(1).split(",") if c.strip()
        )
        if not codes:
            continue
        line = tok.start[0]
        out[line] = out.get(line, frozenset()) | codes
        if line not in code_lines:
            standalone[line] = codes
    for line, codes in standalone.items():
        out[line + 1] = out.get(line + 1, frozenset()) | codes
    return out


def is_suppressed(suppressions: Dict[int, FrozenSet[str]],
                  line: int, code: str) -> bool:
    return code in suppressions.get(line, frozenset())
