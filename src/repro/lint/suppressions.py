"""Inline suppression comments.

A finding is silenced by a comment of the form::

    x = np.random.default_rng(seed)  # repro-lint: ignore[RPR001] seeded per run

either on the offending line itself or as a standalone comment on the line
immediately above.  The bracket must name the code(s) being suppressed
(comma-separated); a bare ``# repro-lint: ignore`` matches nothing, so
suppressions stay auditable.  Everything after the bracket is the
human-readable justification (required by convention; see
``docs/LINTING.md`` for the suppression policy).

Two views over the same single tokenize pass: :func:`suppression_sites`
keeps each physical comment distinct (the RPR011 unused-suppression view),
and :func:`codes_by_line`/:func:`suppressed_codes` flatten sites into the
line -> codes map the filtering step consumes.
"""

from __future__ import annotations

import io
import re
import tokenize
from typing import Dict, FrozenSet, Iterable, List, NamedTuple

__all__ = ["suppressed_codes", "suppression_sites", "codes_by_line",
           "is_suppressed", "SuppressionSite"]

_PATTERN = re.compile(r"#\s*repro-lint:\s*ignore\[([A-Z0-9,\s]+)\]")


class SuppressionSite(NamedTuple):
    """One physical ``ignore[...]`` comment: where it sits, what codes it
    names, and which source lines it covers (its own line, plus the next
    line when it is a standalone comment)."""

    line: int
    codes: FrozenSet[str]
    covered_lines: FrozenSet[int]


def suppression_sites(source: str) -> List[SuppressionSite]:
    """Every suppression comment in ``source`` as a :class:`SuppressionSite`.

    A standalone suppression comment (no code on its line) also covers the
    next line, so multi-code or long-reason suppressions can sit above the
    statement they annotate.
    """
    sites: List[SuppressionSite] = []
    if "repro-lint" not in source:
        return sites  # skip tokenizing the (common) suppression-free file
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return sites
    code_lines = {
        t.start[0]
        for t in tokens
        if t.type not in (tokenize.COMMENT, tokenize.NL, tokenize.NEWLINE,
                          tokenize.INDENT, tokenize.DEDENT, tokenize.ENDMARKER)
    }
    for tok in tokens:
        if tok.type != tokenize.COMMENT:
            continue
        match = _PATTERN.search(tok.string)
        if not match:
            continue
        codes = frozenset(
            c.strip() for c in match.group(1).split(",") if c.strip()
        )
        if not codes:
            continue
        line = tok.start[0]
        covered = {line} if line in code_lines else {line, line + 1}
        sites.append(SuppressionSite(line=line, codes=codes,
                                     covered_lines=frozenset(covered)))
    return sites


def codes_by_line(
    sites: Iterable[SuppressionSite],
) -> Dict[int, FrozenSet[str]]:
    """Flatten sites into the line -> suppressed-codes map."""
    out: Dict[int, FrozenSet[str]] = {}
    for site in sites:
        for line in site.covered_lines:
            out[line] = out.get(line, frozenset()) | site.codes
    return out


def suppressed_codes(source: str) -> Dict[int, FrozenSet[str]]:
    """Map line number -> codes suppressed on that line."""
    return codes_by_line(suppression_sites(source))


def is_suppressed(suppressions: Dict[int, FrozenSet[str]],
                  line: int, code: str) -> bool:
    return code in suppressions.get(line, frozenset())
