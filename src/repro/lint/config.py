"""Scoping and vocabulary of the repro lint rules.

The rules distinguish two scopes inside ``src/repro/``:

**result-affecting** code — anything whose execution determines simulation
output (and therefore golden snapshots and result-cache keys).  The base
list is :data:`repro.runner.keys._SIM_SOURCES` — the exact set of packages
hashed into the result cache's code version — extended with the experiment
and verification layers, whose iteration order and randomness feed the
golden files even though they are not part of the cache key.

**orchestration/measurement** code — the CLI, the sweep runner and the
host-timing harness, which legitimately read wall clocks (progress lines,
benchmark timing) and whose iteration order never reaches a result.

The determinism rule's RNG half applies *everywhere* (a stray
``random.random()`` in the CLI would still be a latent hazard); the
wall-clock half and the ordering/units rules apply only to
result-affecting code.
"""

from __future__ import annotations

from pathlib import Path
from typing import Tuple

__all__ = [
    "BLESSED_RNG_CLASS",
    "CLOCK_SEAM_RELPATHS",
    "CONFIG_CLASSES",
    "FORBIDDEN_WALLCLOCK",
    "HOT_PATH_BATCH_RELPATHS",
    "HOT_PATH_SCALAR_CALLS",
    "NUMPY_RANDOM_PREFIX",
    "RESULT_AFFECTING_PREFIXES",
    "RNG_DRAW_METHODS",
    "RNG_EXEMPT_RELPATHS",
    "SCALAR_PATH_RELPATHS",
    "TIME_WORDS",
    "UNIT_SUFFIXES",
    "UNITLESS_SUFFIXES",
    "default_package_root",
    "default_repo_root",
    "is_result_affecting",
    "relpath_in_package",
]

#: Package-relative prefixes of result-affecting code.  Mirrors
#: ``repro.runner.keys._SIM_SOURCES`` (sim, core, cache, workloads,
#: analysis/stats.py — widened to all of analysis/, whose table rendering
#: feeds goldens) plus the layers outside the cache key whose output is
#: still regression-checked: experiments, verify, xkernel.
RESULT_AFFECTING_PREFIXES: Tuple[str, ...] = (
    "sim",
    "core",
    "cache",
    "workloads",
    "analysis",
    "experiments",
    "verify",
    "xkernel",
)

#: Files allowed to construct RNGs: the one blessed seed-derivation point.
RNG_EXEMPT_RELPATHS: Tuple[str, ...] = ("sim/rng.py",)

#: Package-relative paths of the *batched* hot path: modules whose whole
#: point is to amortize per-event Python dispatch.  Re-introducing a
#: per-packet scalar call there (one model call or calendar insertion per
#: packet) silently undoes the batching win while remaining perfectly
#: correct — exactly the class of regression a reviewer won't spot in a
#: diff, so RPR007 makes the linter spot it.
HOT_PATH_BATCH_RELPATHS: Tuple[str, ...] = ("sim/batch.py",)

#: Method/function names that mark per-event scalar dispatch when called
#: inside a hot-path batch module.  The fused core must use the batch
#: APIs (``component_penalty_us_batch``, ``exec_times_batch``,
#: ``extend_columns``/``fold_batch_counts``) or operate on the calendar
#: wholesale at fold-back; per-packet scheduling and per-packet model or
#: metrics calls are banned.
HOT_PATH_SCALAR_CALLS: Tuple[str, ...] = (
    "component_penalty_us",
    "execution_time_us",
    "execution_time_scalar",
    "schedule",
    "schedule_call",
    "schedule_record",
    "at_call",
    "on_arrival",
    "on_completion",
    # Policy hooks: the fused loops must inline policy decisions (queue
    # steering, group-masked MRU), never call back into the scalar
    # per-packet policy/dispatch objects.
    "next_dispatch",
    "select_processor",
)

#: Resolved dotted call targets that read ambient time/entropy.  These are
#: forbidden in result-affecting code; ``time.perf_counter`` & friends are
#: included because even *measuring* wall time inside the simulation layer
#: indicates results may depend on the host.
FORBIDDEN_WALLCLOCK: Tuple[str, ...] = (
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
    "os.urandom",
    "os.getrandom",
    "uuid.uuid1",
    "uuid.uuid4",
    "secrets.token_bytes",
    "secrets.token_hex",
    "secrets.randbelow",
)

#: Package-relative paths of the distributed backend's time-sensitive
#: core: lease bookkeeping, transport chaos, and the coordinator loop.
#: These modules must take their time source through the injectable
#: clock seam (``DistributedOptions.clock`` / the ``LeaseTable`` clock
#: argument) rather than *calling* wall-clock functions directly —
#: referencing ``time.monotonic`` as a default value is fine; calling it
#: inline is not (RPR013).  Direct reads make lease-expiry arithmetic
#: untestable (tests would have to sleep real seconds) and chaos runs
#: timing-dependent.
CLOCK_SEAM_RELPATHS: Tuple[str, ...] = (
    "runner/backends/distributed.py",
    "runner/backends/lease.py",
    "runner/backends/transport.py",
)

#: Calls resolving under this prefix construct/draw NumPy randomness.
NUMPY_RANDOM_PREFIX = "numpy.random"

#: Snake-case name components that denote a time-valued quantity.  A
#: variable/argument/field whose name contains one of these must carry a
#: unit suffix.  Deliberately conservative: generic words like ``start``/
#: ``end``/``now`` are excluded (they routinely name indices and
#: positions), so the rule stays high-precision.
TIME_WORDS: Tuple[str, ...] = (
    "delay",
    "duration",
    "latency",
    "elapsed",
    "warmup",
    "lifetime",
    "timeout",
    "horizon",
    "interarrival",
    "queueing",
    "wait",
)

#: Accepted explicit time-unit suffixes (also used for mixed-unit checks).
UNIT_SUFFIXES: Tuple[str, ...] = ("_ns", "_us", "_ms", "_s", "_min")

#: Suffixes that mark a name as *not* a raw time value (rates, ratios,
#: counts, flags) even when it contains a time word — e.g.
#: ``delay_ratio``, ``wait_count``.
UNITLESS_SUFFIXES: Tuple[str, ...] = (
    "_pps",
    "_hz",
    "_per_us",
    "_per_s",
    "_per_second",
    "_ratio",
    "_fraction",
    "_count",
    "_counts",
    "_factor",
    "_flag",
    "_id",
    "_ids",
)


#: Package-relative paths of the *scalar* engine path for the RPR008
#: config-read parity rule: the modules whose per-packet behaviour the
#: fused batched engine must reproduce bit for bit.  A ``SystemConfig``/
#: params field read (directly or through a provenance-carrying instance
#: binding) in any of these must also be read by ``sim/batch.py`` or be
#: declared batch-irrelevant there.
SCALAR_PATH_RELPATHS: Tuple[str, ...] = (
    "sim/engine.py",
    "sim/dispatch.py",
    "sim/locks.py",
    "core/exec_model.py",
    "core/policies.py",
)

#: Config dataclasses whose field reads RPR008 tracks across the two
#: engines.  ``SystemConfig`` is the run's identity; the params classes
#: are the knobs it aggregates (``costs``/``composition``/``platform``).
CONFIG_CLASSES: Tuple[str, ...] = (
    "SystemConfig",
    "ProtocolCosts",
    "FootprintComposition",
    "PlatformConfig",
)

#: The one class allowed to derive generators from the run seed
#: (``sim/rng.py``).  Any value flowing out of an instance of it is a
#: blessed generator for RPR009.
BLESSED_RNG_CLASS = "RandomStreams"

#: ``numpy.random.Generator`` method names that consume entropy.  A call
#: of one of these in result-affecting code is an RPR009 draw site whose
#: receiver must trace back to :data:`BLESSED_RNG_CLASS` (or to an
#: explicitly RPR001-suppressed construction).
RNG_DRAW_METHODS: Tuple[str, ...] = (
    "integers", "random", "choice", "shuffle", "permutation", "permuted",
    "exponential", "uniform", "normal", "standard_normal", "lognormal",
    "poisson", "geometric", "binomial", "gamma", "beta", "pareto",
    "weibull", "zipf", "standard_exponential", "standard_gamma", "bytes",
)


def default_package_root() -> Path:
    """The installed ``repro`` package directory (``src/repro`` in a checkout)."""
    return Path(__file__).resolve().parent.parent


def default_repo_root() -> Path:
    """Best-effort repository root: two levels above the package."""
    return default_package_root().parent.parent


def relpath_in_package(path: Path, package_root: Path) -> str:
    """POSIX path of ``path`` relative to the package root, or "" if outside."""
    try:
        return Path(path).resolve().relative_to(Path(package_root).resolve()).as_posix()
    except ValueError:
        return ""


def is_result_affecting(relpath: str) -> bool:
    """Whether a package-relative path is result-affecting code.

    Unknown locations (empty relpath — e.g. a fixture file outside the
    package) are treated as result-affecting: the conservative default for
    code the linter cannot place.
    """
    if not relpath:
        return True
    return relpath.split("/", 1)[0] in RESULT_AFFECTING_PREFIXES
