"""Per-file AST rules: RPR001 (determinism), RPR002 (ordering),
RPR003 (units), RPR006 (pickle-safe pool submissions), RPR007
(no per-event scalar dispatch in batched hot-path modules).

Each rule is an :class:`ast.NodeVisitor` producing :class:`Finding`
objects.  They share :class:`ImportTable`, a whole-module import-alias
resolver, so ``np.random.default_rng`` and
``from numpy.random import default_rng`` are recognized as the same call
target.

Design notes
------------
RPR001 flags *calls* into ``numpy.random`` (constructing or drawing
randomness), not mere attribute references: annotations and
``isinstance(rng, np.random.Generator)`` checks are legitimate.  The
stdlib ``random`` module is banned at import, since the package never has
a reason to touch it.  Wall-clock reads are banned only in
result-affecting code (the CLI and runner legitimately time themselves).

RPR002 tracks set-valued *local names* per scope (not just literal
``for x in {...}``), so the real-world pattern ``procs = {...}; for p in
procs:`` is caught.  ``sorted(...)`` around the source clears the hazard.

RPR003 checks names at binding sites only (parameters, assignment
targets, loop targets, fields) — call sites inherit discipline from their
definitions — and flags ``+``/``-`` between operands whose names carry
*different* unit suffixes.

RPR007 guards the batched engine's reason to exist: inside the modules
listed in ``HOT_PATH_BATCH_RELPATHS``, a call to one of the per-event
scalar APIs (``component_penalty_us``, ``schedule_call``, the metrics
hooks, ...) is flagged even though it would be perfectly *correct* — one
scalar model call or calendar insertion per packet quietly reverts the
array core to per-event dispatch, which no functional test can catch.
Matched by attribute/function name (the hot-path modules are few and
idiomatic, so name matching is precise there); legitimate exceptions
carry a suppression comment explaining why.

RPR013 protects the distributed backend's injectable clock seam: inside
the modules listed in ``CLOCK_SEAM_RELPATHS`` (lease bookkeeping,
transport, coordinator loop), *calling* a wall-clock function directly is
flagged — lease-expiry arithmetic must flow through the clock passed via
``DistributedOptions.clock``, so tests can drive time with a fake and
chaos runs replay without sleeping.  Referencing ``time.monotonic``
without calling it (the seam's default value) is deliberately allowed.

RPR006 keeps worker entrypoints pickle-safe: anything handed to a
process pool's ``submit``/``map`` must be a module-level function.  A
lambda or a function nested inside another function cannot be pickled to
a worker — with the fork start method it may appear to work locally and
then break under spawn, and a "helpful" fallback would silently run
serially.  The receiver is matched by name (contains ``pool`` or
``executor``), which covers the idiomatic spellings without needing type
inference.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set, Tuple, Union

from .config import (
    FORBIDDEN_WALLCLOCK,
    HOT_PATH_SCALAR_CALLS,
    NUMPY_RANDOM_PREFIX,
    TIME_WORDS,
    UNIT_SUFFIXES,
    UNITLESS_SUFFIXES,
)
from .findings import Finding

__all__ = [
    "ImportTable",
    "ClockSeamRule",
    "DeterminismRule",
    "HotPathBatchRule",
    "OrderingRule",
    "PickleSafetyRule",
    "UnitsRule",
    "run_file_rules",
]

#: numpy.random attributes that are types/infrastructure, not draws.
_NUMPY_RANDOM_TYPES = frozenset({
    "Generator", "BitGenerator", "SeedSequence",
    "PCG64", "PCG64DXSM", "Philox", "SFC64", "MT19937",
})


class ImportTable:
    """Alias -> dotted module/attribute path for one module's imports."""

    def __init__(self, tree: ast.Module) -> None:
        self.aliases: Dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname is not None:
                        self.aliases[alias.asname] = alias.name
                    else:
                        top = alias.name.split(".", 1)[0]
                        self.aliases[top] = top
            elif isinstance(node, ast.ImportFrom) and node.level == 0 \
                    and node.module is not None:
                for alias in node.names:
                    bound = alias.asname if alias.asname is not None else alias.name
                    self.aliases[bound] = f"{node.module}.{alias.name}"

    def resolve(self, node: ast.expr) -> Optional[str]:
        """Dotted path of a Name/Attribute chain, through import aliases."""
        parts: List[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        root = self.aliases.get(node.id, node.id)
        parts.append(root)
        return ".".join(reversed(parts))


class _BaseRule(ast.NodeVisitor):
    def __init__(self, path: str, imports: ImportTable,
                 result_affecting: bool, rng_exempt: bool) -> None:
        self.path = path
        self.imports = imports
        self.result_affecting = result_affecting
        self.rng_exempt = rng_exempt
        self.findings: List[Finding] = []

    def emit(self, node: ast.AST, code: str, message: str) -> None:
        self.findings.append(Finding(
            path=self.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            code=code,
            message=message,
        ))


# ----------------------------------------------------------------------
# RPR001 — determinism
# ----------------------------------------------------------------------
class DeterminismRule(_BaseRule):
    """Forbid ambient randomness everywhere and wall clocks in
    result-affecting code."""

    def visit_Import(self, node: ast.Import) -> None:
        if not self.rng_exempt:
            for alias in node.names:
                top = alias.name.split(".", 1)[0]
                if top == "random":
                    self.emit(node, "RPR001",
                              "import of the stdlib `random` module; draw from "
                              "a seeded generator via repro.sim.rng instead")
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if not self.rng_exempt and node.level == 0 and node.module is not None:
            module = node.module
            if module == "random" or module.startswith("random."):
                self.emit(node, "RPR001",
                          "import from the stdlib `random` module; draw from "
                          "a seeded generator via repro.sim.rng instead")
            elif module == NUMPY_RANDOM_PREFIX or \
                    module.startswith(NUMPY_RANDOM_PREFIX + "."):
                drawn = [a.name for a in node.names
                         if a.name not in _NUMPY_RANDOM_TYPES]
                if drawn:
                    self.emit(node, "RPR001",
                              f"import of numpy.random draw function(s) "
                              f"{', '.join(sorted(drawn))} outside repro.sim.rng")
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        resolved = self.imports.resolve(node.func)
        if resolved is not None:
            if not self.rng_exempt and (
                resolved.startswith(NUMPY_RANDOM_PREFIX + ".")
                and resolved.rsplit(".", 1)[1] not in _NUMPY_RANDOM_TYPES
            ):
                self.emit(node, "RPR001",
                          f"call to {resolved} constructs/draws NumPy "
                          "randomness outside repro.sim.rng")
            elif not self.rng_exempt and resolved.startswith("random."):
                self.emit(node, "RPR001",
                          f"call to stdlib {resolved}; use a seeded generator "
                          "from repro.sim.rng")
            elif self.result_affecting and resolved in FORBIDDEN_WALLCLOCK:
                self.emit(node, "RPR001",
                          f"call to {resolved} reads the host clock/entropy "
                          "inside result-affecting code")
        self.generic_visit(node)


# ----------------------------------------------------------------------
# RPR002 — ordering hazards
# ----------------------------------------------------------------------
_FS_LISTING_CALLS = frozenset({
    "os.listdir", "os.scandir", "os.walk", "glob.glob", "glob.iglob",
})
_FS_LISTING_METHODS = frozenset({"glob", "rglob", "iterdir"})


#: Builtins whose result does not depend on argument iteration order —
#: iterating an unordered source directly inside them is safe.
_ORDER_INSENSITIVE_CONSUMERS = frozenset({
    "sorted", "set", "frozenset", "sum", "min", "max", "len", "any", "all",
})


class OrderingRule(_BaseRule):
    """Flag iteration over unordered sources in result-affecting code."""

    def __init__(self, *args: object, **kwargs: object) -> None:
        super().__init__(*args, **kwargs)  # type: ignore[arg-type]
        #: stack of per-scope maps: name -> True if last bound to a set.
        self._scopes: List[Dict[str, bool]] = [{}]
        #: >0 while visiting args of sorted()/set()/sum()/... calls.
        self._order_insensitive_depth = 0

    # -- scope management ------------------------------------------------
    def _enter_scope(self) -> None:
        self._scopes.append({})

    def _exit_scope(self) -> None:
        self._scopes.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._enter_scope()
        self.generic_visit(node)
        self._exit_scope()

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._enter_scope()
        self.generic_visit(node)
        self._exit_scope()

    # -- set-expression detection ---------------------------------------
    def _is_set_expr(self, node: ast.expr) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name) \
                and node.func.id in ("set", "frozenset"):
            return True
        if isinstance(node, ast.Name):
            return self._scopes[-1].get(node.id, False)
        if isinstance(node, ast.BinOp) and isinstance(
                node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)):
            return self._is_set_expr(node.left) or self._is_set_expr(node.right)
        return False

    def _bind(self, target: ast.expr, value: Optional[ast.expr]) -> None:
        if isinstance(target, ast.Name):
            is_set = value is not None and self._is_set_expr(value)
            self._scopes[-1][target.id] = is_set
        elif isinstance(target, (ast.Tuple, ast.List)):
            if isinstance(value, (ast.Tuple, ast.List)) and \
                    len(value.elts) == len(target.elts):
                for t, v in zip(target.elts, value.elts):
                    self._bind(t, v)
            else:
                for t in target.elts:
                    self._bind(t, None)

    def visit_Assign(self, node: ast.Assign) -> None:
        self.generic_visit(node)
        for target in node.targets:
            self._bind(target, node.value)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self.generic_visit(node)
        if node.value is not None:
            self._bind(node.target, node.value)

    # -- iteration checks ------------------------------------------------
    def _hazard(self, iter_node: ast.expr) -> Optional[str]:
        if not self.result_affecting:
            return None
        if isinstance(iter_node, (ast.Set, ast.SetComp)):
            return "iteration over a set literal/comprehension"
        if isinstance(iter_node, ast.Call):
            func = iter_node.func
            if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
                return f"iteration over {func.id}(...)"
            resolved = self.imports.resolve(func)
            if resolved in _FS_LISTING_CALLS:
                return f"iteration over {resolved}(...) (directory order is " \
                       "filesystem-dependent)"
            if isinstance(func, ast.Attribute) and \
                    func.attr in _FS_LISTING_METHODS:
                return f"iteration over .{func.attr}(...) (directory order " \
                       "is filesystem-dependent)"
        if isinstance(iter_node, ast.Name) and \
                self._scopes[-1].get(iter_node.id, False):
            return f"iteration over set-valued name {iter_node.id!r}"
        if isinstance(iter_node, ast.BinOp) and self._is_set_expr(iter_node):
            return "iteration over a set expression"
        return None

    def _check_iter(self, iter_node: ast.expr) -> None:
        if self._order_insensitive_depth > 0:
            return
        reason = self._hazard(iter_node)
        if reason is not None:
            self.emit(iter_node, "RPR002",
                      f"{reason}; wrap in sorted(...) to fix the order")

    def visit_For(self, node: ast.For) -> None:
        self._check_iter(node.iter)
        self.generic_visit(node)
        self._bind(node.target, None)

    def _visit_comprehension(self, node: Union[
            ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp]) -> None:
        for gen in node.generators:
            self._check_iter(gen.iter)
        self.generic_visit(node)

    visit_ListComp = _visit_comprehension
    visit_SetComp = _visit_comprehension
    visit_DictComp = _visit_comprehension
    visit_GeneratorExp = _visit_comprehension

    def visit_Call(self, node: ast.Call) -> None:
        # set.pop() removes an arbitrary element.
        if self.result_affecting and isinstance(node.func, ast.Attribute) \
                and node.func.attr == "pop" and not node.args \
                and isinstance(node.func.value, ast.Name) \
                and self._scopes[-1].get(node.func.value.id, False):
            self.emit(node, "RPR002",
                      f"{node.func.value.id}.pop() removes an arbitrary "
                      "set element")
        if isinstance(node.func, ast.Name) and \
                node.func.id in _ORDER_INSENSITIVE_CONSUMERS:
            self._order_insensitive_depth += 1
            self.generic_visit(node)
            self._order_insensitive_depth -= 1
        else:
            self.generic_visit(node)


# ----------------------------------------------------------------------
# RPR003 — units discipline
# ----------------------------------------------------------------------
def _time_word_in(name: str) -> Optional[str]:
    for comp in name.lower().split("_"):
        for word in TIME_WORDS:
            if comp == word or comp == word + "s":
                return word
    return None


def _has_unit_suffix(name: str) -> bool:
    lowered = name.lower()
    return lowered.endswith(UNIT_SUFFIXES) or lowered.endswith(UNITLESS_SUFFIXES)


def _unit_of_name(name: str) -> Optional[str]:
    lowered = name.lower()
    for suffix in sorted(UNIT_SUFFIXES, key=len, reverse=True):
        if lowered.endswith(suffix):
            return suffix
    return None


class UnitsRule(_BaseRule):
    """Time-valued names must carry unit suffixes; +/- must not mix them."""

    _SKIP_NAMES = frozenset({"self", "cls", "_"})

    def _check_name(self, name: str, node: ast.AST) -> None:
        if not self.result_affecting or name in self._SKIP_NAMES:
            return
        word = _time_word_in(name)
        if word is not None and not _has_unit_suffix(name):
            self.emit(node, "RPR003",
                      f"time-valued name {name!r} (contains {word!r}) lacks a "
                      f"unit suffix; rename to e.g. {name}_us")

    def _check_target(self, target: ast.expr) -> None:
        if isinstance(target, ast.Name):
            self._check_name(target.id, target)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._check_target(elt)
        elif isinstance(target, ast.Starred):
            self._check_target(target.value)

    # -- binding sites ---------------------------------------------------
    def _check_args(self, args: ast.arguments) -> None:
        every = list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
        for extra in (args.vararg, args.kwarg):
            if extra is not None:
                every.append(extra)
        for arg in every:
            self._check_name(arg.arg, arg)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_args(node.args)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_args(node.args)
        self.generic_visit(node)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._check_args(node.args)
        self.generic_visit(node)

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._check_target(target)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self._check_target(node.target)
        self.generic_visit(node)

    def visit_NamedExpr(self, node: ast.NamedExpr) -> None:
        self._check_target(node.target)
        self.generic_visit(node)

    def visit_For(self, node: ast.For) -> None:
        self._check_target(node.target)
        self.generic_visit(node)

    def _visit_comprehension(self, node: Union[
            ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp]) -> None:
        for gen in node.generators:
            self._check_target(gen.target)
        self.generic_visit(node)

    visit_ListComp = _visit_comprehension
    visit_SetComp = _visit_comprehension
    visit_DictComp = _visit_comprehension
    visit_GeneratorExp = _visit_comprehension

    # -- mixed-unit arithmetic ------------------------------------------
    def _operand_unit(self, node: ast.expr) -> Optional[str]:
        if isinstance(node, ast.Name):
            return _unit_of_name(node.id)
        if isinstance(node, ast.Attribute):
            return _unit_of_name(node.attr)
        return None

    def visit_BinOp(self, node: ast.BinOp) -> None:
        if self.result_affecting and isinstance(node.op, (ast.Add, ast.Sub)):
            left = self._operand_unit(node.left)
            right = self._operand_unit(node.right)
            if left is not None and right is not None and left != right:
                self.emit(node, "RPR003",
                          f"arithmetic mixes unit suffixes {left!r} and "
                          f"{right!r}; convert explicitly first")
        self.generic_visit(node)


# ----------------------------------------------------------------------
# RPR006 — pickle-safe pool submissions
# ----------------------------------------------------------------------
class PickleSafetyRule(_BaseRule):
    """Process-pool ``submit``/``map`` targets must be module-level
    functions (lambdas and nested defs cannot be pickled to a worker)."""

    _POOL_METHODS = frozenset({"submit", "map"})
    _POOL_WORDS = ("pool", "executor")

    def __init__(self, *args: object, **kwargs: object) -> None:
        super().__init__(*args, **kwargs)  # type: ignore[arg-type]
        #: names of functions defined inside another function's body.
        self._nested_defs: Set[str] = set()

    def visit_Module(self, node: ast.Module) -> None:
        self._collect_nested(node, inside_function=False)
        self.generic_visit(node)

    def _collect_nested(self, node: ast.AST, inside_function: bool) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if inside_function:
                    self._nested_defs.add(child.name)
                self._collect_nested(child, True)
            else:
                self._collect_nested(child, inside_function)

    def _pool_receiver(self, node: ast.expr) -> Optional[str]:
        name: Optional[str] = None
        if isinstance(node, ast.Name):
            name = node.id
        elif isinstance(node, ast.Attribute):
            name = node.attr
        if name is not None and any(w in name.lower()
                                    for w in self._POOL_WORDS):
            return name
        return None

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute) and \
                func.attr in self._POOL_METHODS and node.args:
            receiver = self._pool_receiver(func.value)
            if receiver is not None:
                target = node.args[0]
                if isinstance(target, ast.Lambda):
                    self.emit(node, "RPR006",
                              f"lambda passed to {receiver}.{func.attr}(); "
                              "pool workers can only unpickle module-level "
                              "functions")
                elif isinstance(target, ast.Name) and \
                        target.id in self._nested_defs:
                    self.emit(node, "RPR006",
                              f"nested function {target.id!r} passed to "
                              f"{receiver}.{func.attr}(); move it to module "
                              "level so pool workers can unpickle it")
        self.generic_visit(node)


# ----------------------------------------------------------------------
# RPR007 — no per-event scalar dispatch in batched hot-path modules
# ----------------------------------------------------------------------
class HotPathBatchRule(_BaseRule):
    """Flag calls to per-event scalar APIs inside modules whose purpose
    is batched/array execution (``HOT_PATH_BATCH_RELPATHS``).

    A per-packet ``model.component_penalty_us(...)`` or
    ``sim.schedule_call(...)`` in the fused core is functionally
    indistinguishable from the batch path (bit-identity is the core's
    contract), so only a structural rule can keep the O(events) Python
    dispatch from creeping back in.
    """

    _BANNED = frozenset(HOT_PATH_SCALAR_CALLS)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        name: Optional[str] = None
        if isinstance(func, ast.Attribute):
            name = func.attr
        elif isinstance(func, ast.Name):
            name = func.id
        if name in self._BANNED:
            self.emit(node, "RPR007",
                      f"per-event scalar call {name}() in a batched hot-path "
                      "module; use the batch APIs (component_penalty_us_batch, "
                      "exec_times_batch, extend_columns) or fold wholesale at "
                      "the end of the run")
        self.generic_visit(node)


# ----------------------------------------------------------------------
# RPR013 — injectable clock seam in distributed coordinator/lease logic
# ----------------------------------------------------------------------
class ClockSeamRule(_BaseRule):
    """Flag direct wall-clock *calls* inside the distributed backend's
    time-sensitive modules (``CLOCK_SEAM_RELPATHS``).

    Lease expiry is arithmetic over timestamps; if any of it reads
    ``time.monotonic()`` inline, unit tests must sleep real seconds to
    see an expiry and a chaos replay's timing depends on the host.  All
    time must enter through the injected clock (``DistributedOptions
    .clock`` / the ``LeaseTable`` clock argument).  Only ``ast.Call``
    nodes are flagged: passing ``time.monotonic`` *by reference* as the
    seam's default is the sanctioned idiom.
    """

    _BANNED = frozenset(FORBIDDEN_WALLCLOCK)

    def visit_Call(self, node: ast.Call) -> None:
        resolved = self.imports.resolve(node.func)
        if resolved is not None and resolved in self._BANNED:
            self.emit(node, "RPR013",
                      f"direct wall-clock call {resolved}() in "
                      "coordinator/lease logic; route time through the "
                      "injectable clock seam (DistributedOptions.clock) so "
                      "lease expiry is testable with a fake clock and chaos "
                      "runs replay without real sleeps")
        self.generic_visit(node)


# ----------------------------------------------------------------------
# Driver for one file
# ----------------------------------------------------------------------
def run_file_rules(path: str, source: str, *, result_affecting: bool,
                   rng_exempt: bool, hot_path: bool = False,
                   clock_seam: bool = False,
                   tree: Optional[ast.Module] = None) -> List[Finding]:
    """Run every per-file rule; syntax errors become a single
    pseudo-finding so a broken file fails loudly rather than silently
    passing.  ``tree`` lets the engine pass an already-parsed AST so each
    file is parsed exactly once across all rules."""
    if tree is None:
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as exc:
            return [Finding(path=path, line=exc.lineno or 1,
                            col=(exc.offset or 1) - 1, code="RPR000",
                            message=f"syntax error: {exc.msg}")]
    imports = ImportTable(tree)
    findings: List[Finding] = []
    rule_classes: List[type] = [DeterminismRule, OrderingRule, UnitsRule,
                                PickleSafetyRule]
    if hot_path:
        rule_classes.append(HotPathBatchRule)
    if clock_seam:
        rule_classes.append(ClockSeamRule)
    for rule_cls in rule_classes:
        rule = rule_cls(path, imports, result_affecting, rng_exempt)
        rule.visit(tree)
        findings.extend(rule.findings)
    return findings
