"""Project-level rules: RPR004 (cache-key hygiene), RPR005
(registry/golden conformance), and RPR012 (warm-state ledger).

Unlike the per-file rules, these checks read *several* artifacts and
cross-check them:

RPR004
    Every field of ``SystemConfig`` (statically parsed from
    ``sim/system.py``) must appear either in the
    ``_CONTENT_KEY_FIELDS`` acknowledgement set in ``runner/keys.py`` or
    in the observability exclusion list (``_OBSERVABILITY_FIELDS``).
    ``canonicalize`` hashes fields dynamically, so a new field silently
    joins the cache key; this rule forces the author to *declare* whether
    it is result-affecting or pure observability.  Stale names (in the
    lists but no longer on the dataclass) and conflicts (in both lists)
    are also flagged.

RPR005
    Every ``experiments/eNN_*.py`` module must be registered in the
    ``_MODULES`` map of ``experiments/base.py`` and have a golden digest
    in ``tests/goldens/MANIFEST.json`` — and vice versa, so the golden
    check can never silently cover less than the experiment suite.

Both functions take explicit paths so the fixture tests can point them at
mutated copies.
"""

from __future__ import annotations

import ast
import json
import re
from pathlib import Path
from typing import Dict, FrozenSet, List, Optional, Set

from .findings import Finding

__all__ = [
    "check_cache_key_conformance",
    "check_registry_conformance",
    "check_warm_state_ledger",
    "system_config_fields",
]

_EXPERIMENT_MODULE = re.compile(r"^(e\d{2})_\w+\.py$")


def _parse(path: Path) -> Optional[ast.Module]:
    try:
        return ast.parse(path.read_text(), filename=str(path))
    except (OSError, SyntaxError):
        return None


def _finding(path: Path, node: Optional[ast.AST], message: str,
             code: str) -> Finding:
    return Finding(
        path=str(path),
        line=getattr(node, "lineno", 1) if node is not None else 1,
        col=getattr(node, "col_offset", 0) if node is not None else 0,
        code=code,
        message=message,
    )


# ----------------------------------------------------------------------
# RPR004 — cache-key hygiene
# ----------------------------------------------------------------------
def system_config_fields(system_py: Path) -> Dict[str, int]:
    """Field name -> line number of the ``SystemConfig`` dataclass, parsed
    statically (annotated assignments in the class body)."""
    tree = _parse(system_py)
    fields: Dict[str, int] = {}
    if tree is None:
        return fields
    for node in tree.body:
        if isinstance(node, ast.ClassDef) and node.name == "SystemConfig":
            for stmt in node.body:
                if isinstance(stmt, ast.AnnAssign) and \
                        isinstance(stmt.target, ast.Name):
                    fields[stmt.target.id] = stmt.lineno
    return fields


def _literal_string_set(node: ast.expr) -> Optional[FrozenSet[str]]:
    """Evaluate a frozenset/set literal of strings, else None."""
    try:
        value = ast.literal_eval(node)
    except ValueError:
        # frozenset({...}) is a Call, not a literal — unwrap it.
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name) \
                and node.func.id in ("set", "frozenset") and len(node.args) == 1:
            return _literal_string_set(node.args[0])
        return None
    if isinstance(value, (set, frozenset, list, tuple)) and \
            all(isinstance(v, str) for v in value):
        return frozenset(value)
    return None


def _keys_py_lists(keys_py: Path) -> Dict[str, FrozenSet[str]]:
    """Extract ``_CONTENT_KEY_FIELDS`` and the SystemConfig entry of
    ``_OBSERVABILITY_FIELDS`` from ``runner/keys.py``."""
    out: Dict[str, FrozenSet[str]] = {}
    tree = _parse(keys_py)
    if tree is None:
        return out
    for node in tree.body:
        if not isinstance(node, ast.Assign) or len(node.targets) != 1:
            continue
        target = node.targets[0]
        if not isinstance(target, ast.Name):
            continue
        if target.id == "_CONTENT_KEY_FIELDS":
            parsed = _literal_string_set(node.value)
            if parsed is not None:
                out["content"] = parsed
        elif target.id == "_OBSERVABILITY_FIELDS" and \
                isinstance(node.value, ast.Dict):
            for key, value in zip(node.value.keys, node.value.values):
                if isinstance(key, ast.Constant) and \
                        isinstance(key.value, str) and \
                        key.value.endswith(".SystemConfig"):
                    parsed = _literal_string_set(value)
                    if parsed is not None:
                        out["observability"] = parsed
    return out


def check_cache_key_conformance(system_py: Path, keys_py: Path) -> List[Finding]:
    """RPR004: SystemConfig fields vs the key/exclusion lists in keys.py."""
    findings: List[Finding] = []
    fields = system_config_fields(system_py)
    if not fields:
        findings.append(_finding(
            system_py, None,
            "could not locate the SystemConfig dataclass to audit its "
            "cache-key coverage", "RPR004"))
        return findings
    lists = _keys_py_lists(keys_py)
    content = lists.get("content")
    observability = lists.get("observability", frozenset())
    if content is None:
        findings.append(_finding(
            keys_py, None,
            "missing or non-literal _CONTENT_KEY_FIELDS acknowledgement "
            "set; the cache-key audit needs it", "RPR004"))
        return findings

    for name in sorted(set(fields) - content - observability):
        findings.append(Finding(
            path=str(system_py), line=fields[name], col=0, code="RPR004",
            message=f"SystemConfig field {name!r} is neither acknowledged in "
                    f"_CONTENT_KEY_FIELDS nor excluded in "
                    f"_OBSERVABILITY_FIELDS ({keys_py.name}); decide whether "
                    f"it affects results and add it to exactly one list"))
    for name in sorted((content | observability) - set(fields)):
        which = "_CONTENT_KEY_FIELDS" if name in content \
            else "_OBSERVABILITY_FIELDS"
        findings.append(_finding(
            keys_py, None,
            f"{which} names {name!r}, which is not a SystemConfig field "
            f"(stale entry)", "RPR004"))
    for name in sorted(content & observability):
        findings.append(_finding(
            keys_py, None,
            f"SystemConfig field {name!r} appears in both _CONTENT_KEY_FIELDS "
            f"and _OBSERVABILITY_FIELDS; it must be in exactly one", "RPR004"))
    return findings


# ----------------------------------------------------------------------
# RPR005 — registry/golden conformance
# ----------------------------------------------------------------------
def _registered_modules(base_py: Path) -> Dict[str, str]:
    """The ``_MODULES`` literal of experiments/base.py: id -> module name."""
    tree = _parse(base_py)
    if tree is None:
        return {}
    for node in tree.body:
        if isinstance(node, ast.Assign) and len(node.targets) == 1 and \
                isinstance(node.targets[0], ast.Name) and \
                node.targets[0].id == "_MODULES" and \
                isinstance(node.value, ast.Dict):
            try:
                value = ast.literal_eval(node.value)
            except ValueError:
                return {}
            if isinstance(value, dict):
                return {str(k): str(v) for k, v in value.items()}
    return {}


def _golden_ids(manifest_path: Path) -> Optional[Set[str]]:
    try:
        manifest = json.loads(manifest_path.read_text())
    except (OSError, ValueError):
        return None
    goldens = manifest.get("goldens")
    if not isinstance(goldens, dict):
        return None
    return set(goldens)


def check_registry_conformance(experiments_dir: Path, base_py: Path,
                               manifest_path: Path) -> List[Finding]:
    """RPR005: eNN_*.py modules vs the registry and the golden manifest."""
    findings: List[Finding] = []
    modules = _registered_modules(base_py)
    if not modules:
        findings.append(_finding(
            base_py, None,
            "could not parse the _MODULES experiment registry", "RPR005"))
        return findings
    golden_ids = _golden_ids(manifest_path)
    if golden_ids is None:
        findings.append(_finding(
            manifest_path, None,
            "missing or malformed golden manifest (expected a 'goldens' "
            "object keyed by experiment id)", "RPR005"))
        golden_ids = set()

    on_disk: Dict[str, str] = {}
    for entry in sorted(experiments_dir.glob("e[0-9][0-9]_*.py")):
        match = _EXPERIMENT_MODULE.match(entry.name)
        if match:
            on_disk[match.group(1)] = entry.stem

    for eid in sorted(set(on_disk) - set(modules)):
        findings.append(_finding(
            experiments_dir / f"{on_disk[eid]}.py", None,
            f"experiment module {on_disk[eid]!r} is not registered in the "
            f"_MODULES map of {base_py.name}", "RPR005"))
    for eid in sorted(set(modules) - set(on_disk)):
        findings.append(_finding(
            base_py, None,
            f"registry entry {eid!r} -> {modules[eid]!r} has no module file "
            f"in {experiments_dir.name}/", "RPR005"))
    for eid, module_name in sorted(modules.items()):
        if module_name in on_disk.values() and eid != module_name.split("_")[0]:
            findings.append(_finding(
                base_py, None,
                f"registry id {eid!r} does not match module prefix of "
                f"{module_name!r}", "RPR005"))
    for eid in sorted(set(on_disk) - golden_ids):
        findings.append(_finding(
            experiments_dir / f"{on_disk[eid]}.py", None,
            f"experiment {eid!r} has no golden digest in "
            f"{manifest_path.name}; record one with `repro verify --update`",
            "RPR005"))
    for eid in sorted(golden_ids - set(on_disk)):
        findings.append(_finding(
            manifest_path, None,
            f"golden manifest entry {eid!r} has no experiment module",
            "RPR005"))
    return findings


# ----------------------------------------------------------------------
# RPR012 — warm-state ledger
# ----------------------------------------------------------------------
#: Constructor names whose module-level calls create mutable containers.
_MUTABLE_CTORS = frozenset({
    "dict", "list", "set", "deque", "defaultdict", "OrderedDict", "Counter",
})

#: Globals exempt from the ledger: the ledger itself, and Python metadata.
_LEDGER_NAME = "_WARM_LEDGER"
_RESET_NAME = "reset_warm_state"


def _is_mutable_value(node: ast.expr) -> bool:
    """Whether an assigned value is a mutable container at module level."""
    if isinstance(node, (ast.Dict, ast.List, ast.Set,
                         ast.DictComp, ast.ListComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        name = func.id if isinstance(func, ast.Name) else (
            func.attr if isinstance(func, ast.Attribute) else None)
        return name in _MUTABLE_CTORS
    return False


def check_warm_state_ledger(backends_dir: Path) -> List[Finding]:
    """RPR012: every module-level mutable container in ``runner/backends/``
    must be (a) registered in ``_WARM_LEDGER`` with a non-empty reason
    string and (b) referenced by ``reset_warm_state()``.

    Warm workers deliberately hold state across tasks; this ledger keeps
    that set *closed*: a new cache cannot be added without declaring why
    cross-task reuse is result-safe and wiring it into the reset path.
    Stale ledger entries (naming no surviving global) are flagged too.
    """
    findings: List[Finding] = []
    mutable_globals: Dict[str, Finding] = {}
    ledger: Dict[str, Optional[str]] = {}
    ledger_lines: Dict[str, Finding] = {}
    ledger_home: Optional[Path] = None
    reset_names: Set[str] = set()
    reset_found = False

    for module in sorted(backends_dir.glob("*.py")):
        tree = _parse(module)
        if tree is None:
            continue
        for node in tree.body:
            targets: List[ast.expr] = []
            value: Optional[ast.expr] = None
            if isinstance(node, ast.Assign):
                targets, value = node.targets, node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets, value = [node.target], node.value
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                    and node.name == _RESET_NAME:
                reset_found = True
                for sub in ast.walk(node):
                    if isinstance(sub, ast.Name):
                        reset_names.add(sub.id)
                continue
            if value is None:
                continue
            for target in targets:
                if not isinstance(target, ast.Name):
                    continue
                name = target.id
                if name == _LEDGER_NAME:
                    ledger_home = module
                    if isinstance(value, ast.Dict):
                        for key, reason in zip(value.keys, value.values):
                            if not (isinstance(key, ast.Constant)
                                    and isinstance(key.value, str)):
                                continue
                            text = (reason.value
                                    if isinstance(reason, ast.Constant)
                                    and isinstance(reason.value, str)
                                    else None)
                            ledger[key.value] = text
                            ledger_lines[key.value] = _finding(
                                module, key, "", "RPR012")
                    continue
                if name.startswith("__") and name.endswith("__"):
                    continue
                if _is_mutable_value(value):
                    mutable_globals[name] = _finding(module, node, "", "RPR012")

    if not mutable_globals and not ledger:
        return findings

    for name, anchor in sorted(mutable_globals.items()):
        if name not in ledger:
            findings.append(Finding(
                path=anchor.path, line=anchor.line, col=anchor.col,
                code="RPR012",
                message=f"module-level mutable cache {name!r} is not "
                        f"registered in {_LEDGER_NAME}; warm workers carry "
                        "it across tasks — declare why that is result-safe "
                        f"and clear it in {_RESET_NAME}()"))
            continue
        reason = ledger[name]
        if not reason or not reason.strip():
            anchor = ledger_lines.get(name, anchor)
            findings.append(Finding(
                path=anchor.path, line=anchor.line, col=anchor.col,
                code="RPR012",
                message=f"{_LEDGER_NAME} entry {name!r} needs a non-empty "
                        "reason string explaining why cross-task reuse is "
                        "result-safe"))
        if name not in reset_names:
            findings.append(Finding(
                path=anchor.path, line=anchor.line, col=anchor.col,
                code="RPR012",
                message=f"ledger-registered cache {name!r} is never "
                        f"referenced inside {_RESET_NAME}(); the reset "
                        "path must clear every registered cache"))

    for name in sorted(set(ledger) - set(mutable_globals)):
        anchor = ledger_lines[name]
        findings.append(Finding(
            path=anchor.path, line=anchor.line, col=anchor.col,
            code="RPR012",
            message=f"stale {_LEDGER_NAME} entry {name!r} names no "
                    "module-level mutable cache in runner/backends/; "
                    "delete it so the ledger stays honest"))

    if mutable_globals and not reset_found and ledger_home is not None:
        findings.append(_finding(
            ledger_home, None,
            f"runner/backends/ holds mutable module state but defines no "
            f"{_RESET_NAME}() to clear it", "RPR012"))
    return findings
