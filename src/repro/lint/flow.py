"""Interprocedural flow analysis: the substrate under RPR008–RPR010.

The per-file rules (:mod:`repro.lint.rules`) see one AST at a time; the
cross-engine parity contracts cannot be checked that way — whether the
fused batched engine reads the same config knobs as the scalar path, and
whether a random draw traces back to :mod:`repro.sim.rng`, are properties
of *flows across modules*.  This module builds the minimal interprocedural
substrate those rules need:

**Per-module symbol tables** — classes, methods, module functions and the
import-alias table of every module under the package root, parsed once
(the engine shares its AST cache).

**Abstract values with provenance** — expressions resolve to a small
union-of-atoms domain: instances of known classes, instances of the
tracked config dataclasses, blessed/suppressed RNG generators, and
function parameters.  Every resolution also carries the set of
``(ConfigClass, field)`` reads it performed, so an instance binding like
``self.model = ExecutionTimeModel(config.costs, ...)`` *remembers* that
dereferencing it depends on ``SystemConfig.costs`` — the mechanism that
lets ``sim/batch.py``'s ``model._t_warm`` count as a read of
``ProtocolCosts.t_warm_us``.

**Instance-binding tables** — ``self.X = expr`` assignments across each
class (bases merged, subclass wins), resolved to a fixpoint so bindings
that reference other classes' bindings (``self.model = system.model``)
converge.

**A call graph** — typed edges where the receiver resolves (method lookup
through the base-class chain, plus virtual-dispatch expansion to subclass
overrides, so ``view.random_choice(...)`` reaches the dispatcher's
drawing implementation), name-matched fallback edges otherwise, and
constructor edges for calls of known classes.  Call sites record their
already-resolved argument values, which is what lets RPR009 trace a
generator *parameter* back through every caller.

On top of it, three project rules (explicit paths, like RPR004/005, so
fixture tests can point them at mutated copies):

* :func:`check_config_read_parity` — RPR008
* :func:`check_rng_provenance` — RPR009
* :func:`check_metrics_schema_parity` — RPR010 (purely structural; needs
  only ``sim/metrics.py``, ``sim/batch.py`` and the golden files)
"""

from __future__ import annotations

import ast
import json
from dataclasses import dataclass, field as dc_field
from pathlib import Path
from typing import (
    Dict, FrozenSet, Iterable, Iterator, List, Mapping, Optional, Sequence,
    Set, Tuple,
)

from .config import (
    BLESSED_RNG_CLASS,
    CONFIG_CLASSES,
    RNG_DRAW_METHODS,
    RNG_EXEMPT_RELPATHS,
    SCALAR_PATH_RELPATHS,
    is_result_affecting,
)
from .findings import Finding
from .rules import ImportTable
from .suppressions import suppressed_codes

__all__ = [
    "ProjectIndex",
    "build_project_index",
    "check_config_read_parity",
    "check_metrics_schema_parity",
    "check_rng_provenance",
]

# ----------------------------------------------------------------------
# Abstract values
# ----------------------------------------------------------------------
# An atom is one alternative for what an expression may be:
#   ("cfg", cls)        instance of a tracked config dataclass
#   ("inst", cls)       instance of a known project class
#   ("cls", cls)        the class object itself
#   ("rng", origin)     a generator; origin in {"blessed", "suppressed",
#                       "unblessed"}
#   ("param", key, name) the value of parameter `name` of function `key`
Atom = Tuple[str, ...]
#: One recorded config read: (config class name, attribute name).
Read = Tuple[str, str]
#: (alternatives, config reads performed while resolving)
Value = Tuple[FrozenSet[Atom], FrozenSet[Read]]

_EMPTY: Value = (frozenset(), frozenset())

_RNG_OK = ("blessed", "suppressed")


def _merge(*values: Value) -> Value:
    atoms: Set[Atom] = set()
    reads: Set[Read] = set()
    for a, r in values:
        atoms |= a
        reads |= r
    return frozenset(atoms), frozenset(reads)


# ----------------------------------------------------------------------
# Symbol tables
# ----------------------------------------------------------------------
@dataclass
class ClassInfo:
    name: str
    relpath: str
    node: ast.ClassDef
    bases: Tuple[str, ...]
    methods: Dict[str, ast.FunctionDef]
    #: AnnAssign field name -> (lineno, annotation expr)
    fields: Dict[str, Tuple[int, Optional[ast.expr]]]


@dataclass
class ModuleInfo:
    relpath: str
    path: Path
    tree: ast.Module
    imports: ImportTable
    functions: Dict[str, ast.FunctionDef]
    classes: Dict[str, ClassInfo]
    #: Lines carrying a ``repro-lint: ignore[RPR001]`` suppression —
    #: an *audited* RNG construction point for provenance purposes.
    rng_suppressed_lines: FrozenSet[int]


@dataclass
class _FuncRecord:
    key: str                    # "Class.meth" or "relpath::func"
    relpath: str
    owner: Optional[str]        # class name for methods
    node: ast.FunctionDef
    is_static: bool
    is_classmethod: bool


@dataclass
class _CallSite:
    relpath: str
    line: int
    caller_key: str
    #: whether the callee's leading self/cls is bound to the receiver
    bound: bool
    arg_values: Tuple[Value, ...]
    kwarg_values: Mapping[str, Value]


@dataclass
class _DrawSite:
    relpath: str
    line: int
    col: int
    method: str
    receiver: Value
    caller_key: str


class ProjectIndex:
    """Symbol tables, bindings, call graph and extracted facts for one
    package tree.  Build via :func:`build_project_index`."""

    def __init__(self, package_root: Path) -> None:
        self.package_root = Path(package_root)
        self.modules: Dict[str, ModuleInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        self.functions: Dict[str, _FuncRecord] = {}
        #: bare function/method name -> keys defining it (fallback edges)
        self.by_name: Dict[str, List[str]] = {}
        self.subclasses: Dict[str, Set[str]] = {}
        #: config class -> attr -> lineno (fields + properties + methods)
        self.config_attrs: Dict[str, Dict[str, int]] = {}
        #: (cls, attr) -> same-class attrs its body reads (for methods and
        #: properties of config classes; transitive closure)
        self.config_attr_closure: Dict[Read, FrozenSet[str]] = {}
        #: class -> attr -> Value (own ``self.X = ...`` bindings only;
        #: query through :meth:`binding` for the merged base-chain view)
        self.bindings: Dict[str, Dict[str, Value]] = {}
        # Facts extracted by the analysis pass:
        self.callsites: Dict[str, List[_CallSite]] = {}
        self.draw_sites: List[_DrawSite] = []
        self.edges: Dict[str, Set[str]] = {}
        self.has_draw: Dict[str, bool] = {}
        #: relpath -> (cls, attr) -> (line, col) of the first read site
        self.reads: Dict[str, Dict[Read, Tuple[int, int]]] = {}

    # ---------------- class machinery ----------------
    def mro(self, cls: str) -> List[str]:
        """Base-class linearization by name (BFS, self first)."""
        out: List[str] = []
        queue = [cls]
        while queue:
            name = queue.pop(0)
            if name in out or name not in self.classes:
                continue
            out.append(name)
            queue.extend(self.classes[name].bases)
        return out

    def all_subclasses(self, cls: str) -> Set[str]:
        out: Set[str] = set()
        queue = [cls]
        while queue:
            for sub in self.subclasses.get(queue.pop(), ()):
                if sub not in out:
                    out.add(sub)
                    queue.append(sub)
        return out

    def find_method(self, cls: str, name: str) -> Optional[str]:
        """Key of ``name`` looked up through ``cls``'s base chain."""
        for c in self.mro(cls):
            if name in self.classes[c].methods:
                return f"{c}.{name}"
        return None

    def binding(self, cls: str, attr: str) -> Optional[Value]:
        """Instance binding of ``attr`` for ``cls`` (base chain merged,
        most-derived definition wins)."""
        for c in self.mro(cls):
            value = self.bindings.get(c, {}).get(attr)
            if value is not None:
                return value
        return None


def _iter_stmts(body: Sequence[ast.stmt]) -> Iterator[ast.stmt]:
    """Statements in lexical order, descending into compound statements
    but not into nested function/class definitions."""
    for stmt in body:
        yield stmt
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            continue
        for sub in (getattr(stmt, "body", None), getattr(stmt, "orelse", None),
                    getattr(stmt, "finalbody", None)):
            if sub:
                yield from _iter_stmts(sub)
        for handler in getattr(stmt, "handlers", ()) or ():
            yield from _iter_stmts(handler.body)


def _walk_expr(node: ast.AST) -> Iterator[ast.AST]:
    """``ast.walk`` that does not descend into nested function bodies."""
    queue: List[ast.AST] = [node]
    while queue:
        cur = queue.pop()
        yield cur
        for child in ast.iter_child_nodes(cur):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.ClassDef)):
                continue
            queue.append(child)


def _decorator_names(node: ast.FunctionDef) -> Set[str]:
    out: Set[str] = set()
    for dec in node.decorator_list:
        target = dec.func if isinstance(dec, ast.Call) else dec
        if isinstance(target, ast.Name):
            out.add(target.id)
        elif isinstance(target, ast.Attribute):
            out.add(target.attr)
    return out


def _base_names(node: ast.ClassDef) -> Tuple[str, ...]:
    names: List[str] = []
    for base in node.bases:
        if isinstance(base, ast.Name):
            names.append(base.id)
        elif isinstance(base, ast.Attribute):
            names.append(base.attr)
    return tuple(names)


# ----------------------------------------------------------------------
# Index construction
# ----------------------------------------------------------------------
def build_project_index(
    package_root: Path,
    trees: Optional[Mapping[Path, ast.Module]] = None,
    sources: Optional[Mapping[Path, str]] = None,
) -> ProjectIndex:
    """Parse/inventory every module under ``package_root`` and run the
    whole-project analysis (bindings fixpoint + extraction pass).

    ``trees``/``sources`` are optional pre-parsed caches keyed by
    *resolved* path — the lint engine passes its shared per-file cache so
    nothing is parsed twice.
    """
    root = Path(package_root)
    index = ProjectIndex(root)
    trees = trees or {}
    sources = sources or {}
    for path in sorted(root.rglob("*.py")):
        relpath = path.resolve().relative_to(root.resolve()).as_posix()
        resolved = path.resolve()
        source = sources.get(resolved)
        tree = trees.get(resolved)
        if tree is None:
            try:
                if source is None:
                    source = path.read_text()
                tree = ast.parse(source, filename=str(path))
            except (OSError, UnicodeDecodeError, SyntaxError):
                continue  # RPR000 is reported by the engine, not here
        if source is None:
            try:
                source = path.read_text()
            except (OSError, UnicodeDecodeError):
                source = ""
        rng_lines = frozenset(
            line for line, codes in suppressed_codes(source).items()
            if "RPR001" in codes
        ) if "repro-lint" in source else frozenset()
        module = ModuleInfo(
            relpath=relpath, path=path, tree=tree,
            imports=ImportTable(tree), functions={}, classes={},
            rng_suppressed_lines=rng_lines,
        )
        for stmt in tree.body:
            if isinstance(stmt, ast.FunctionDef):
                module.functions[stmt.name] = stmt
            elif isinstance(stmt, ast.ClassDef):
                methods: Dict[str, ast.FunctionDef] = {}
                fields: Dict[str, Tuple[int, Optional[ast.expr]]] = {}
                for item in stmt.body:
                    if isinstance(item, ast.FunctionDef):
                        methods[item.name] = item
                    elif isinstance(item, ast.AnnAssign) and \
                            isinstance(item.target, ast.Name):
                        fields[item.target.id] = (item.lineno,
                                                  item.annotation)
                info = ClassInfo(
                    name=stmt.name, relpath=relpath, node=stmt,
                    bases=_base_names(stmt), methods=methods, fields=fields,
                )
                module.classes[stmt.name] = info
                # First definition wins on (rare) bare-name collisions.
                index.classes.setdefault(stmt.name, info)
        index.modules[relpath] = module

    for info in index.classes.values():
        for base in info.bases:
            index.subclasses.setdefault(base, set()).add(info.name)
        for name, node in info.methods.items():
            decorators = _decorator_names(node)
            record = _FuncRecord(
                key=f"{info.name}.{name}", relpath=info.relpath,
                owner=info.name, node=node,
                is_static="staticmethod" in decorators,
                is_classmethod="classmethod" in decorators,
            )
            index.functions[record.key] = record
            index.by_name.setdefault(name, []).append(record.key)
    for module in index.modules.values():
        for name, node in module.functions.items():
            record = _FuncRecord(
                key=f"{module.relpath}::{name}", relpath=module.relpath,
                owner=None, node=node, is_static=False, is_classmethod=False,
            )
            index.functions[record.key] = record
            index.by_name.setdefault(name, []).append(record.key)

    _collect_config_attrs(index)
    analyzer = _Analyzer(index)
    analyzer.solve_bindings()
    analyzer.extract()
    return index


def _collect_config_attrs(index: ProjectIndex) -> None:
    """Field/property/method inventory of the tracked config classes plus
    the same-class read closure of derived attributes (a read of
    ``l1_reload_us`` *is* a read of the fields its body touches)."""
    for cls in CONFIG_CLASSES:
        info = index.classes.get(cls)
        if info is None:
            continue
        attrs: Dict[str, int] = {}
        direct: Dict[str, Set[str]] = {}
        for name, (lineno, _ann) in info.fields.items():
            attrs[name] = lineno
        for name, node in info.methods.items():
            if name.startswith("__"):
                continue
            attrs[name] = node.lineno
        index.config_attrs[cls] = attrs
        for name, node in info.methods.items():
            if name.startswith("__"):
                continue
            reads: Set[str] = set()
            for sub in ast.walk(node):
                if isinstance(sub, ast.Attribute) and \
                        isinstance(sub.value, ast.Name) and \
                        sub.value.id == "self" and sub.attr in attrs:
                    reads.add(sub.attr)
            direct[name] = reads
        # Transitive closure down to plain fields.
        for name in direct:
            seen: Set[str] = set()
            queue = list(direct[name])
            while queue:
                attr = queue.pop()
                if attr in seen:
                    continue
                seen.add(attr)
                queue.extend(direct.get(attr, ()))
            index.config_attr_closure[(cls, name)] = frozenset(seen)


# ----------------------------------------------------------------------
# The analyzer
# ----------------------------------------------------------------------
class _Analyzer:
    """Two passes over every function: a bindings fixpoint (``self.X =``
    assignments resolved until stable) and a fact-extraction pass
    (config reads, call sites, draw sites, call-graph edges)."""

    def __init__(self, index: ProjectIndex) -> None:
        self.index = index
        self.recording: Optional[Dict[Read, Tuple[int, int]]] = None
        self._ret_memo: Dict[str, FrozenSet[Atom]] = {}
        self._ret_active: Set[str] = set()

    # ---------------- environments ----------------
    def initial_env(self, record: _FuncRecord,
                    module: ModuleInfo) -> Dict[str, Value]:
        env: Dict[str, Value] = {}
        args = record.node.args
        params = list(args.posonlyargs) + list(args.args) + \
            list(args.kwonlyargs)
        for i, arg in enumerate(params):
            atoms: Set[Atom] = set()
            if i == 0 and record.owner and not record.is_static:
                if record.is_classmethod:
                    atoms.add(("cls", record.owner))
                else:
                    atoms.add(("inst", record.owner))
                env[arg.arg] = (frozenset(atoms), frozenset())
                continue
            atoms.add(("param", record.key, arg.arg))
            atoms |= self.annotation_atoms(arg.annotation)
            if not any(a[0] in ("cfg", "inst", "cls") for a in atoms):
                if arg.arg in ("config", "cfg") and \
                        "SystemConfig" in self.index.classes:
                    atoms.add(("cfg", "SystemConfig"))
                elif arg.arg == "system" and \
                        "NetworkProcessingSystem" in self.index.classes:
                    atoms.add(("inst", "NetworkProcessingSystem"))
            env[arg.arg] = (frozenset(atoms), frozenset())
        return env

    def annotation_atoms(self, ann: Optional[ast.expr]) -> Set[Atom]:
        """Atoms for a known-class annotation, unwrapping ``Optional``/
        ``Union``/``"ForwardRef"`` spellings."""
        if ann is None:
            return set()
        if isinstance(ann, ast.Constant) and isinstance(ann.value, str):
            try:
                ann = ast.parse(ann.value, mode="eval").body
            except SyntaxError:
                return set()
        if isinstance(ann, ast.Subscript):
            base = ann.value
            base_name = base.attr if isinstance(base, ast.Attribute) else (
                base.id if isinstance(base, ast.Name) else "")
            if base_name in ("Optional", "Union"):
                inner = ann.slice
                parts = inner.elts if isinstance(inner, ast.Tuple) else [inner]
                out: Set[Atom] = set()
                for part in parts:
                    out |= self.annotation_atoms(part)
                return out
            return set()
        if isinstance(ann, ast.BinOp) and isinstance(ann.op, ast.BitOr):
            return self.annotation_atoms(ann.left) | \
                self.annotation_atoms(ann.right)
        name = None
        if isinstance(ann, ast.Name):
            name = ann.id
        elif isinstance(ann, ast.Attribute):
            name = ann.attr
        if name is None:
            return set()
        if name in CONFIG_CLASSES and name in self.index.config_attrs:
            return {("cfg", name)}
        if name in self.index.classes:
            return {("inst", name)}
        return set()

    def class_atoms(self, name: str) -> Set[Atom]:
        if name in CONFIG_CLASSES and name in self.index.config_attrs:
            # Calling a config class constructs a config instance; the
            # bare name is still usable as a callee.
            return {("cls", name)}
        if name in self.index.classes:
            return {("cls", name)}
        return set()

    def return_summary(self, key: str) -> FrozenSet[Atom]:
        """Atoms a call of function ``key`` may evaluate to: its return
        annotation plus its resolved ``return`` expressions (which is how
        an identity-style helper like ``def _rng(rng): return rng``
        passes its parameter atoms through).  Memoized; recursion-safe.
        Reads are deliberately *not* propagated — the callee's own file
        gets credited by its own extraction pass."""
        if key in self._ret_memo:
            return self._ret_memo[key]
        if key in self._ret_active:
            return frozenset()
        record = self.index.functions.get(key)
        if record is None:
            return frozenset()
        module = self.index.modules.get(record.relpath)
        if module is None:
            return frozenset()
        self._ret_active.add(key)
        saved_recording, self.recording = self.recording, None
        try:
            atoms: Set[Atom] = set(
                self.annotation_atoms(record.node.returns))
            env = self.initial_env(record, module)
            for stmt in _iter_stmts(record.node.body):
                if isinstance(stmt, ast.Return) and stmt.value is not None:
                    atoms |= self.resolve(stmt.value, env, module)[0]
                    continue
                value_expr: Optional[ast.expr] = None
                targets: List[ast.expr] = []
                if isinstance(stmt, ast.Assign):
                    value_expr, targets = stmt.value, stmt.targets
                elif isinstance(stmt, ast.AnnAssign) and stmt.value:
                    value_expr, targets = stmt.value, [stmt.target]
                if value_expr is None:
                    continue
                value = self.resolve(value_expr, env, module)
                for target in targets:
                    if isinstance(target, ast.Name):
                        env[target.id] = value
        finally:
            self.recording = saved_recording
            self._ret_active.discard(key)
        result = frozenset(atoms)
        self._ret_memo[key] = result
        return result

    # ---------------- resolution ----------------
    def resolve(self, node: ast.expr, env: Dict[str, Value],
                module: ModuleInfo) -> Value:
        index = self.index
        if isinstance(node, ast.Name):
            if node.id in env:
                return env[node.id]
            atoms = self.class_atoms(node.id)
            if atoms:
                return (frozenset(atoms), frozenset())
            resolved = module.imports.resolve(node)
            if resolved:
                tail = resolved.rsplit(".", 1)[-1]
                atoms = self.class_atoms(tail)
                if atoms:
                    return (frozenset(atoms), frozenset())
            return _EMPTY
        if isinstance(node, ast.Attribute):
            return self._resolve_attribute(node, env, module)
        if isinstance(node, ast.Call):
            return self._resolve_call(node, env, module)
        if isinstance(node, ast.IfExp):
            test = self.resolve(node.test, env, module)
            body = self.resolve(node.body, env, module)
            orelse = self.resolve(node.orelse, env, module)
            merged = _merge(body, orelse)
            return (merged[0], merged[1] | test[1])
        if isinstance(node, ast.BoolOp):
            return _merge(*(self.resolve(v, env, module)
                            for v in node.values))
        if isinstance(node, (ast.Subscript, ast.Starred)):
            # Conflate container and element: a list of X resolves to X.
            return self.resolve(node.value, env, module)
        if isinstance(node, ast.NamedExpr):
            return self.resolve(node.value, env, module)
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            elt = self.resolve(node.elt, env, module)
            reads: Set[Read] = set(elt[1])
            for gen in node.generators:
                reads |= self.resolve(gen.iter, env, module)[1]
            return (elt[0], frozenset(reads))
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            return _merge(*(self.resolve(e, env, module)
                            for e in node.elts)) if node.elts else _EMPTY
        return _EMPTY

    def _record(self, read: Read, node: ast.AST) -> None:
        if self.recording is not None and read not in self.recording:
            self.recording[read] = (getattr(node, "lineno", 1),
                                    getattr(node, "col_offset", 0))

    def _resolve_attribute(self, node: ast.Attribute, env: Dict[str, Value],
                           module: ModuleInfo) -> Value:
        base = self.resolve(node.value, env, module)
        atoms: Set[Atom] = set()
        reads: Set[Read] = set(base[1])
        attr = node.attr
        resolved_any = False
        for atom in base[0]:
            kind = atom[0]
            if kind == "cfg":
                cls = atom[1]
                cls_attrs = self.index.config_attrs.get(cls, {})
                if attr in cls_attrs:
                    read = (cls, attr)
                    reads.add(read)
                    self._record(read, node)
                    resolved_any = True
                    # A config field whose annotation is itself a config
                    # class (SystemConfig.costs -> ProtocolCosts).
                    info = self.index.classes.get(cls)
                    if info is not None and attr in info.fields:
                        atoms |= {
                            a if a[0] != "inst" else ("cfg", a[1])
                            if a[1] in CONFIG_CLASSES else a
                            for a in self.annotation_atoms(
                                info.fields[attr][1])
                        }
            elif kind == "inst":
                cls = atom[1]
                if cls == BLESSED_RNG_CLASS:
                    atoms.add(("rng", "blessed"))
                    resolved_any = True
                    continue
                binding = self.index.binding(cls, attr)
                if binding is not None:
                    atoms |= binding[0]
                    reads |= binding[1]
                    # Dereferencing a provenance-carrying binding *is* a
                    # read of the config fields its initializer touched,
                    # credited to the dereferencing file (the mechanism
                    # that lets batch.py's ``model._t_warm`` count as
                    # reading ``ProtocolCosts.t_warm_us``).
                    for read in binding[1]:
                        self._record(read, node)
                    resolved_any = True
            elif kind == "rng":
                # Attribute chains below a generator stay generator-ish
                # (RandomStreams accessors, bound draw methods like
                # ``sched_int = rngs.scheduling.integers``).
                atoms.add(atom)
                resolved_any = True
        if not resolved_any and attr == "config" and \
                "SystemConfig" in self.index.config_attrs:
            # Fallback: `.config` is idiomatically the SystemConfig.
            atoms.add(("cfg", "SystemConfig"))
        return (frozenset(atoms), frozenset(reads))

    def _callee_keys(self, node: ast.Call, env: Dict[str, Value],
                     module: ModuleInfo,
                     caller: Optional[_FuncRecord]) -> Tuple[
                         List[Tuple[str, bool]], Value]:
        """Resolve a call's possible targets.

        Returns ``([(func_key, receiver_bound)], func_value)`` where
        ``receiver_bound`` says the callee's leading self/cls is bound to
        the receiver (method/constructor calls).
        """
        index = self.index
        func = node.func
        targets: List[Tuple[str, bool]] = []
        if isinstance(func, ast.Name):
            value = self.resolve(func, env, module)
            for atom in value[0]:
                if atom[0] == "cls":
                    key = index.find_method(atom[1], "__init__")
                    if key:
                        targets.append((key, True))
            if not targets:
                record = module.functions.get(func.id)
                if record is not None:
                    targets.append((f"{module.relpath}::{func.id}", False))
                else:
                    resolved = module.imports.resolve(func)
                    tail = resolved.rsplit(".", 1)[-1] if resolved else func.id
                    for key in index.by_name.get(tail, []):
                        rec = index.functions[key]
                        if rec.owner is None:
                            targets.append((key, False))
            return targets, value
        if not isinstance(func, ast.Attribute):
            return targets, _EMPTY
        attr = func.attr
        # super().m(...) binds within the enclosing class's base chain.
        if isinstance(func.value, ast.Call) and \
                isinstance(func.value.func, ast.Name) and \
                func.value.func.id == "super" and caller and caller.owner:
            for base in index.classes[caller.owner].bases:
                key = index.find_method(base, attr)
                if key:
                    targets.append((key, True))
            return targets, _EMPTY
        base = self.resolve(func.value, env, module)
        typed = False
        for atom in base[0]:
            if atom[0] in ("inst", "cls"):
                key = index.find_method(atom[1], attr)
                if key:
                    typed = True
                    targets.append((key, True))
                    # Virtual dispatch: overrides in subclasses.
                    for sub in index.all_subclasses(atom[1]):
                        if attr in index.classes[sub].methods:
                            targets.append((f"{sub}.{attr}", True))
            elif atom[0] == "cfg":
                key = index.find_method(atom[1], attr)
                if key:
                    typed = True
                    targets.append((key, True))
        if not typed and not attr.startswith("__"):
            for key in index.by_name.get(attr, []):
                rec = index.functions[key]
                bound = rec.owner is not None and not rec.is_static
                targets.append((key, bound))
        return targets, base

    def _resolve_call(self, node: ast.Call, env: Dict[str, Value],
                      module: ModuleInfo) -> Value:
        index = self.index
        func = node.func
        atoms: Set[Atom] = set()
        reads: Set[Read] = set()
        # Argument evaluation contributes provenance.
        for arg in node.args:
            reads |= self.resolve(arg, env, module)[1]
        for kw in node.keywords:
            reads |= self.resolve(kw.value, env, module)[1]
        if isinstance(func, ast.Name):
            value = self.resolve(func, env, module)
            reads |= value[1]
            for atom in value[0]:
                if atom[0] == "cls":
                    if atom[1] in CONFIG_CLASSES and \
                            atom[1] in index.config_attrs:
                        atoms.add(("cfg", atom[1]))
                    else:
                        atoms.add(("inst", atom[1]))
                elif atom[0] == "rng":
                    # Calling a bound draw method (``sched_int(...)``)
                    # yields data, not a generator — but the call is
                    # rng-derived, which is all RPR009 needs to know.
                    atoms.add(atom)
            resolved = module.imports.resolve(func)
            if resolved and resolved.startswith("numpy.random") and \
                    resolved.endswith(("default_rng", "RandomState")):
                atoms.add(self._construction_atom(node, module))
            if not atoms:
                # Plain function call: flow atoms out of the callee's
                # return expressions.
                if func.id in module.functions:
                    atoms |= self.return_summary(
                        f"{module.relpath}::{func.id}")
                else:
                    tail = resolved.rsplit(".", 1)[-1] if resolved \
                        else func.id
                    for key in self.index.by_name.get(tail, []):
                        if self.index.functions[key].owner is None:
                            atoms |= self.return_summary(key)
            return (frozenset(atoms), frozenset(reads))
        if isinstance(func, ast.Attribute):
            base = self._resolve_attribute(func, env, module)
            reads |= base[1]
            for atom in base[0]:
                if atom[0] == "rng":
                    atoms.add(atom)
            resolved = module.imports.resolve(func)
            if resolved and resolved.startswith("numpy.random") and \
                    resolved.endswith(("default_rng", "RandomState")):
                atoms.add(self._construction_atom(node, module))
            # Method-call results via return annotations + return-
            # expression summaries.
            recv = self.resolve(func.value, env, module)
            for atom in recv[0]:
                if atom[0] in ("inst", "cls"):
                    key = index.find_method(atom[1], func.attr)
                    if key:
                        atoms |= self.return_summary(key)
            return (frozenset(atoms), frozenset(reads))
        return (frozenset(atoms), frozenset(reads))

    def _construction_atom(self, node: ast.Call,
                           module: ModuleInfo) -> Atom:
        if module.relpath in RNG_EXEMPT_RELPATHS or \
                node.lineno in module.rng_suppressed_lines:
            return ("rng", "suppressed")
        return ("rng", "unblessed")

    # ---------------- pass 1: bindings fixpoint ----------------
    def solve_bindings(self) -> None:
        index = self.index
        # Pre-extract (class, method, attr, value-expr, env-relevant
        # statements) so each round only re-resolves binding expressions.
        sites: List[Tuple[str, _FuncRecord, ModuleInfo]] = []
        for info in index.classes.values():
            module = index.modules.get(info.relpath)
            if module is None:
                continue
            for name in info.methods:
                record = index.functions[f"{info.name}.{name}"]
                sites.append((info.name, record, module))
        for _ in range(4):
            changed = False
            # Summaries may depend on bindings still converging.
            self._ret_memo.clear()
            for cls, record, module in sites:
                env = self.initial_env(record, module)
                for stmt in _iter_stmts(record.node.body):
                    value_expr: Optional[ast.expr] = None
                    targets: List[ast.expr] = []
                    if isinstance(stmt, ast.Assign):
                        value_expr, targets = stmt.value, stmt.targets
                    elif isinstance(stmt, ast.AnnAssign) and stmt.value:
                        value_expr, targets = stmt.value, [stmt.target]
                    if value_expr is None:
                        continue
                    value = self.resolve(value_expr, env, module)
                    for target in targets:
                        if isinstance(target, ast.Name):
                            env[target.id] = value
                        elif isinstance(target, ast.Attribute) and \
                                isinstance(target.value, ast.Name) and \
                                target.value.id == "self":
                            table = index.bindings.setdefault(cls, {})
                            old = table.get(target.attr, _EMPTY)
                            new = _merge(old, value)
                            if new != old:
                                table[target.attr] = new
                                changed = True
            if not changed:
                break

    # ---------------- pass 2: extraction ----------------
    def extract(self) -> None:
        index = self.index
        self._ret_memo.clear()
        for module in index.modules.values():
            # Module-level statements (rare but cheap).
            self._extract_body(None, module, iter(module.tree.body),
                               env={}, caller_key=f"{module.relpath}::")
            for record in index.functions.values():
                if record.relpath != module.relpath:
                    continue
                env = self.initial_env(record, module)
                self._extract_body(record, module,
                                   _iter_stmts(record.node.body), env,
                                   record.key)

    def _extract_body(self, record: Optional[_FuncRecord],
                      module: ModuleInfo, stmts: Iterable[ast.stmt],
                      env: Dict[str, Value], caller_key: str) -> None:
        index = self.index
        self.recording = index.reads.setdefault(module.relpath, {})
        for stmt in stmts:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                continue
            for sub in _walk_expr(stmt):
                if isinstance(sub, ast.Attribute) and \
                        isinstance(sub.ctx, ast.Load):
                    self.resolve(sub, env, module)
                elif isinstance(sub, ast.Call):
                    self._extract_call(sub, env, module, record, caller_key)
            # Sequential environment update.
            value_expr: Optional[ast.expr] = None
            targets: List[ast.expr] = []
            if isinstance(stmt, ast.Assign):
                value_expr, targets = stmt.value, stmt.targets
            elif isinstance(stmt, ast.AnnAssign) and stmt.value:
                value_expr, targets = stmt.value, [stmt.target]
            if value_expr is not None:
                value = self.resolve(value_expr, env, module)
                for target in targets:
                    if isinstance(target, ast.Name):
                        env[target.id] = value
        self.recording = None

    def _extract_call(self, node: ast.Call, env: Dict[str, Value],
                      module: ModuleInfo, record: Optional[_FuncRecord],
                      caller_key: str) -> None:
        index = self.index
        targets, _ = self._callee_keys(node, env, module, record)
        if targets:
            arg_values = tuple(self.resolve(a, env, module)
                               for a in node.args
                               if not isinstance(a, ast.Starred))
            kwarg_values = {
                kw.arg: self.resolve(kw.value, env, module)
                for kw in node.keywords if kw.arg is not None
            }
            for key, bound in targets:
                index.callsites.setdefault(key, []).append(_CallSite(
                    relpath=module.relpath, line=node.lineno,
                    caller_key=caller_key, bound=bound,
                    arg_values=arg_values, kwarg_values=kwarg_values,
                ))
                index.edges.setdefault(caller_key, set()).add(key)
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr in RNG_DRAW_METHODS:
            receiver = self.resolve(func.value, env, module)
            # Definitively non-RNG receivers (known class/config
            # instances with no rng/param alternative) are not draws.
            atoms = receiver[0]
            non_rng = atoms and all(
                a[0] in ("inst", "cls", "cfg") for a in atoms)
            if not non_rng:
                index.draw_sites.append(_DrawSite(
                    relpath=module.relpath, line=node.lineno,
                    col=node.col_offset, method=func.attr,
                    receiver=receiver, caller_key=caller_key,
                ))
                index.has_draw[caller_key] = True


# ----------------------------------------------------------------------
# Shared helpers for the rules
# ----------------------------------------------------------------------
def _as_index(package_root: Path,
              index: Optional[ProjectIndex]) -> ProjectIndex:
    if index is not None:
        return index
    return build_project_index(Path(package_root))


def _finding(path: Path, line: int, col: int, code: str,
             message: str) -> Finding:
    return Finding(path=str(path), line=line, col=col, code=code,
                   message=message)


def _module_declaration(module: ModuleInfo, name: str,
                        ) -> Tuple[Optional[Dict[str, str]], int]:
    """A module-level ``NAME = {...}`` string->string dict literal,
    returning ``(dict or None, lineno)``."""
    for stmt in module.tree.body:
        target = None
        value = None
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 and \
                isinstance(stmt.targets[0], ast.Name):
            target, value = stmt.targets[0].id, stmt.value
        elif isinstance(stmt, ast.AnnAssign) and \
                isinstance(stmt.target, ast.Name) and stmt.value is not None:
            target, value = stmt.target.id, stmt.value
        if target != name or value is None:
            continue
        try:
            literal = ast.literal_eval(value)
        except (ValueError, SyntaxError):
            return None, stmt.lineno
        if isinstance(literal, dict) and all(
                isinstance(k, str) and isinstance(v, str)
                for k, v in literal.items()):
            return literal, stmt.lineno
        return None, stmt.lineno
    return None, 1


def _module_tuple_names(module: ModuleInfo, name: str) -> Optional[Set[str]]:
    """Names inside a module-level ``NAME = (ClassA, ClassB, ...)``."""
    for stmt in module.tree.body:
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 and \
                isinstance(stmt.targets[0], ast.Name) and \
                stmt.targets[0].id == name and \
                isinstance(stmt.value, (ast.Tuple, ast.List)):
            return {e.id for e in stmt.value.elts if isinstance(e, ast.Name)}
    return None


def _expand_reads(index: ProjectIndex,
                  reads: Iterable[Read]) -> FrozenSet[Read]:
    """Close a read set over derived config attributes (properties and
    methods pull in the fields their bodies touch)."""
    out: Set[Read] = set()
    for cls, attr in reads:
        out.add((cls, attr))
        for sub in index.config_attr_closure.get((cls, attr), ()):
            out.add((cls, sub))
    return frozenset(out)


# ----------------------------------------------------------------------
# RPR008 — config-read parity
# ----------------------------------------------------------------------
_BATCH_DECL = "_BATCH_IRRELEVANT_FIELDS"
_BATCH_RELPATH = "sim/batch.py"


def check_config_read_parity(
    package_root: Path,
    *,
    index: Optional[ProjectIndex] = None,
) -> List[Finding]:
    """RPR008: every config field the scalar path reads must be read by
    the fused batched engine too, or be declared batch-irrelevant (with a
    reason) in ``sim/batch.py``'s ``_BATCH_IRRELEVANT_FIELDS``."""
    index = _as_index(package_root, index)
    batch = index.modules.get(_BATCH_RELPATH)
    if batch is None:
        return []  # no batched engine in this tree — nothing to compare
    findings: List[Finding] = []

    declared, decl_line = _module_declaration(batch, _BATCH_DECL)
    if declared is None:
        findings.append(_finding(
            batch.path, decl_line, 0, "RPR008",
            f"sim/batch.py must declare {_BATCH_DECL} as a literal "
            "dict mapping 'ConfigClass.field' to the reason the fused "
            "engine never reads it (may be empty)"))
        declared = {}

    scalar_sites: Dict[Read, Tuple[str, int, int]] = {}
    for relpath in SCALAR_PATH_RELPATHS:
        for read, (line, col) in index.reads.get(relpath, {}).items():
            scalar_sites.setdefault(read, (relpath, line, col))
    scalar = _expand_reads(index, scalar_sites)
    batched = _expand_reads(index, index.reads.get(_BATCH_RELPATH, {}))

    known_attrs = index.config_attrs
    for key, reason in sorted(declared.items()):
        cls, _, attr = key.partition(".")
        if cls not in known_attrs or attr not in known_attrs[cls]:
            findings.append(_finding(
                batch.path, decl_line, 0, "RPR008",
                f"stale {_BATCH_DECL} entry {key!r}: not a known "
                "config field"))
            continue
        if not reason.strip():
            findings.append(_finding(
                batch.path, decl_line, 0, "RPR008",
                f"{_BATCH_DECL} entry {key!r} has an empty reason — "
                "declarations must say why the field is batch-irrelevant"))
        if (cls, attr) in batched:
            findings.append(_finding(
                batch.path, decl_line, 0, "RPR008",
                f"stale {_BATCH_DECL} entry {key!r}: the batched engine "
                "does read this field now"))
        elif (cls, attr) not in scalar:
            findings.append(_finding(
                batch.path, decl_line, 0, "RPR008",
                f"stale {_BATCH_DECL} entry {key!r}: the scalar path no "
                "longer reads this field"))

    declared_reads = {tuple(k.partition(".")[::2]) for k in declared}
    for read in sorted(scalar - batched):
        if read in declared_reads:
            continue
        # Derived attrs whose underlying fields are all covered don't
        # need separate parity (reading `l1_reload_us` is covered when
        # its closure fields are read on the batched side).
        closure = index.config_attr_closure.get(read)
        if closure and all((read[0], f) in batched for f in closure):
            continue
        site = scalar_sites.get(read)
        if site is None:
            # Read reached only through closure expansion; anchor at the
            # attribute that pulled it in.
            for direct, loc in scalar_sites.items():
                if direct[0] == read[0] and read[1] in \
                        index.config_attr_closure.get(direct, ()):
                    site = loc
                    break
        if site is None:
            continue
        relpath, line, col = site
        module = index.modules[relpath]
        findings.append(_finding(
            module.path, line, col, "RPR008",
            f"{read[0]}.{read[1]} is read in the scalar path "
            f"({relpath}:{line}) but never by the fused batched engine; "
            f"read it in sim/batch.py or add it to {_BATCH_DECL} with a "
            "reason"))
    return findings


# ----------------------------------------------------------------------
# RPR009 — RNG provenance + policy fallback coverage
# ----------------------------------------------------------------------
_FALLBACK_DECL = "_SCALAR_FALLBACK_POLICIES"
_FUSED_TUPLES = ("_LOCKING_POLICIES", "_LOCKING_POOL_POLICIES",
                 "_IPS_POLICIES")
_POLICY_REGISTRIES = ("LOCKING_POLICIES", "IPS_POLICIES")
_POLICIES_RELPATH = "core/policies.py"
_TRACE_DEPTH = 10


def _classify_rng(index: ProjectIndex, value: Value,
                  seen: Set[Tuple[str, str]],
                  depth: int) -> List[str]:
    """Why ``value`` is not a blessed generator ([] = it is, or cannot be
    shown otherwise).  Parameters recurse through recorded call sites."""
    atoms = value[0]
    if any(a[0] == "rng" and a[1] in _RNG_OK for a in atoms):
        return []
    problems: List[str] = []
    params = [a for a in atoms if a[0] == "param"]
    if any(a == ("rng", "unblessed") for a in atoms):
        problems.append("a generator constructed outside sim/rng.py "
                        "without an audited RPR001 suppression")
    if not params:
        if not problems:
            problems.append("a receiver that does not trace back to "
                            "repro.sim.rng.RandomStreams")
        return problems
    if depth <= 0:
        return []  # depth cap: cannot prove a problem — stay silent
    for atom in params:
        key, name = atom[1], atom[2]
        if (key, name) in seen:
            continue
        seen.add((key, name))
        record = index.functions.get(key)
        if record is None:
            continue
        args = record.node.args
        params_list = [a.arg for a in
                       list(args.posonlyargs) + list(args.args)]
        kwonly = [a.arg for a in args.kwonlyargs]
        for site in index.callsites.get(key, ()):
            if not is_result_affecting(site.relpath):
                continue  # externally seeded harness input
            names = params_list[1:] if (site.bound and params_list and
                                        params_list[0] in ("self", "cls")
                                        ) else params_list
            arg_value: Optional[Value] = None
            if name in names and names.index(name) < len(site.arg_values):
                arg_value = site.arg_values[names.index(name)]
            elif name in site.kwarg_values:
                arg_value = site.kwarg_values[name]
            elif name in kwonly and name in site.kwarg_values:
                arg_value = site.kwarg_values[name]
            if arg_value is None:
                continue  # default used, or *args forwarding — unprovable
            for problem in _classify_rng(index, arg_value, seen, depth - 1):
                problems.append(
                    f"{problem} (flowing into parameter {name!r} of "
                    f"{key} at {site.relpath}:{site.line})")
    return problems


def check_rng_provenance(
    package_root: Path,
    *,
    index: Optional[ProjectIndex] = None,
) -> List[Finding]:
    """RPR009: draw sites in result-affecting code must trace to the
    blessed derivation point, and every RNG-consuming registered policy
    must be fused in ``sim/batch.py`` or declared a scalar fallback."""
    index = _as_index(package_root, index)
    findings: List[Finding] = []

    # ---- half A: draw-site provenance --------------------------------
    for site in index.draw_sites:
        if not is_result_affecting(site.relpath):
            continue
        if site.relpath in RNG_EXEMPT_RELPATHS:
            continue
        problems = _classify_rng(index, site.receiver, set(), _TRACE_DEPTH)
        if problems:
            module = index.modules[site.relpath]
            findings.append(_finding(
                module.path, site.line, site.col, "RPR009",
                f"RNG draw .{site.method}() uses {problems[0]}; every "
                "result-affecting draw must derive from "
                "repro.sim.rng.RandomStreams"))

    # ---- half B: policy fused/fallback coverage ----------------------
    policies_mod = index.modules.get(_POLICIES_RELPATH)
    batch = index.modules.get(_BATCH_RELPATH)
    if policies_mod is None or batch is None:
        return findings

    registered: Dict[str, int] = {}
    for stmt in policies_mod.tree.body:
        if isinstance(stmt, (ast.Assign, ast.AnnAssign)):
            target = stmt.targets[0] if isinstance(stmt, ast.Assign) \
                else stmt.target
            value = stmt.value
            if isinstance(target, ast.Name) and \
                    target.id in _POLICY_REGISTRIES and \
                    isinstance(value, ast.Dict):
                for v in value.values:
                    if isinstance(v, ast.Name):
                        registered[v.id] = v.lineno

    fused: Set[str] = set()
    for name in _FUSED_TUPLES:
        fused |= _module_tuple_names(batch, name) or set()

    declared, decl_line = _module_declaration(batch, _FALLBACK_DECL)
    if declared is None:
        findings.append(_finding(
            batch.path, decl_line, 0, "RPR009",
            f"sim/batch.py must declare {_FALLBACK_DECL} as a literal "
            "dict naming each RNG-consuming policy that deliberately "
            "falls back to the scalar engine, with the reason"))
        declared = {}

    consumes: Dict[str, bool] = {}
    for cls in registered:
        start: Set[str] = set()
        for c in index.mro(cls):
            for m in index.classes[c].methods:
                start.add(f"{c}.{m}")
        seen: Set[str] = set()
        queue = list(start)
        drew = False
        while queue and not drew:
            key = queue.pop()
            if key in seen:
                continue
            seen.add(key)
            if index.has_draw.get(key):
                drew = True
                break
            queue.extend(index.edges.get(key, ()))
        consumes[cls] = drew

    for cls, reason in sorted(declared.items()):
        if cls not in registered:
            findings.append(_finding(
                batch.path, decl_line, 0, "RPR009",
                f"stale {_FALLBACK_DECL} entry {cls!r}: not a "
                "registered policy"))
            continue
        if not reason.strip():
            findings.append(_finding(
                batch.path, decl_line, 0, "RPR009",
                f"{_FALLBACK_DECL} entry {cls!r} has an empty reason"))
        if cls in fused:
            findings.append(_finding(
                batch.path, decl_line, 0, "RPR009",
                f"contradictory {_FALLBACK_DECL} entry {cls!r}: the "
                "policy is fused in sim/batch.py"))

    for cls, lineno in sorted(registered.items()):
        if consumes.get(cls) and cls not in fused and cls not in declared:
            findings.append(_finding(
                policies_mod.path, lineno, 0, "RPR009",
                f"policy {cls!r} consumes scheduling RNG but has no "
                "fused batched path and is not named in sim/batch.py's "
                f"{_FALLBACK_DECL}; fuse it or declare the scalar "
                "fallback with a reason"))
    return findings


# ----------------------------------------------------------------------
# RPR010 — metrics schema parity
# ----------------------------------------------------------------------
_GOLDEN_DECL = "_GOLDEN_UNCOVERED_KEYS"


def _parse_module(path: Path) -> Optional[ast.Module]:
    try:
        return ast.parse(path.read_text(), filename=str(path))
    except (OSError, UnicodeDecodeError, SyntaxError):
        return None


def _class_def(tree: ast.Module, name: str) -> Optional[ast.ClassDef]:
    for stmt in tree.body:
        if isinstance(stmt, ast.ClassDef) and stmt.name == name:
            return stmt
    return None


def _method(cls: ast.ClassDef, name: str) -> Optional[ast.FunctionDef]:
    for stmt in cls.body:
        if isinstance(stmt, ast.FunctionDef) and stmt.name == name:
            return stmt
    return None


def _self_mutations(func: ast.FunctionDef) -> Set[str]:
    """Attributes of ``self`` assigned/augmented anywhere in ``func``,
    excluding pure method calls."""
    out: Set[str] = set()
    for node in ast.walk(func):
        targets: List[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            targets = [node.target]
        for target in targets:
            if isinstance(target, ast.Attribute) and \
                    isinstance(target.value, ast.Name) and \
                    target.value.id == "self":
                out.add(target.attr)
    return out


def _col_extends(func: ast.FunctionDef) -> List[str]:
    """Names of ``self._col_*`` lists extended, in call order."""
    out: List[str] = []
    for node in ast.walk(func):
        if isinstance(node, ast.Call) and \
                isinstance(node.func, ast.Attribute) and \
                node.func.attr == "extend" and \
                isinstance(node.func.value, ast.Attribute) and \
                isinstance(node.func.value.value, ast.Name) and \
                node.func.value.value.id == "self" and \
                node.func.value.attr.startswith("_col_"):
            out.append(node.func.value.attr)
    return out


def _dict_literal_keys(func: ast.FunctionDef) -> List[str]:
    keys: List[str] = []
    for node in ast.walk(func):
        if isinstance(node, ast.Dict):
            for k in node.keys:
                if isinstance(k, ast.Constant) and isinstance(k.value, str):
                    keys.append(k.value)
    return keys


def _golden_row_keys(goldens_dir: Path) -> Set[str]:
    keys: Set[str] = set()

    def walk(obj: object) -> None:
        if isinstance(obj, dict):
            rows = obj.get("rows")
            if isinstance(rows, list):
                for row in rows:
                    if isinstance(row, dict):
                        keys.update(k for k in row if isinstance(k, str))
            for value in obj.values():
                walk(value)
        elif isinstance(obj, list):
            for value in obj:
                walk(value)

    for path in sorted(Path(goldens_dir).glob("*.json")):
        try:
            walk(json.loads(path.read_text()))
        except (OSError, UnicodeDecodeError, ValueError):
            continue
    return keys


def check_metrics_schema_parity(
    metrics_py: Path,
    batch_py: Path,
    goldens_dir: Path,
) -> List[Finding]:
    """RPR010: the scalar fold and the batched columnar fold-back must
    produce the same summary schema, and every summary-table key must be
    pinned by at least one golden field or declared uncovered."""
    findings: List[Finding] = []
    metrics_py, batch_py = Path(metrics_py), Path(batch_py)
    tree = _parse_module(metrics_py)
    if tree is None:
        return [_finding(metrics_py, 1, 0, "RPR010",
                         "cannot parse sim/metrics.py")]

    record_cls = _class_def(tree, "PacketRecord")
    collector = _class_def(tree, "MetricsCollector")
    summary_cls = _class_def(tree, "SimulationSummary")
    if record_cls is None or collector is None or summary_cls is None:
        return [_finding(metrics_py, 1, 0, "RPR010",
                         "sim/metrics.py must define PacketRecord, "
                         "MetricsCollector and SimulationSummary")]

    record_fields = [
        stmt.target.id for stmt in record_cls.body
        if isinstance(stmt, ast.AnnAssign) and
        isinstance(stmt.target, ast.Name)
    ]

    # (a) _ROW_FIELDS mirrors PacketRecord field order.
    row_fields: Optional[List[str]] = None
    row_fields_line = collector.lineno
    for stmt in collector.body:
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 and \
                isinstance(stmt.targets[0], ast.Name) and \
                stmt.targets[0].id == "_ROW_FIELDS":
            row_fields_line = stmt.lineno
            try:
                literal = ast.literal_eval(stmt.value)
                row_fields = [str(v) for v in literal]
            except (ValueError, SyntaxError):
                row_fields = None
    if row_fields is None:
        findings.append(_finding(
            metrics_py, row_fields_line, 0, "RPR010",
            "MetricsCollector._ROW_FIELDS must be a literal tuple of "
            "column names"))
    elif row_fields != record_fields:
        findings.append(_finding(
            metrics_py, row_fields_line, 0, "RPR010",
            f"_ROW_FIELDS {tuple(row_fields)} does not match the "
            f"PacketRecord field order {tuple(record_fields)}"))

    # (b) scalar flush and batched extend_columns feed identical columns.
    flush = _method(collector, "_flush_block")
    extend = _method(collector, "extend_columns")
    n_cols = len(record_fields)
    if flush is None or extend is None:
        findings.append(_finding(
            metrics_py, collector.lineno, 0, "RPR010",
            "MetricsCollector must define both _flush_block (scalar "
            "fold) and extend_columns (batched fold-back)"))
    else:
        scalar_cols = _col_extends(flush)
        batched_cols = _col_extends(extend)
        if scalar_cols != batched_cols:
            missing = sorted(set(scalar_cols) ^ set(batched_cols))
            findings.append(_finding(
                metrics_py, extend.lineno, 0, "RPR010",
                "scalar fold (_flush_block) and batched fold-back "
                f"(extend_columns) extend different columns: "
                f"{missing} differ"))
        extend_params = [a.arg for a in extend.args.args[1:]]
        if len(extend_params) != n_cols:
            findings.append(_finding(
                metrics_py, extend.lineno, 0, "RPR010",
                f"extend_columns takes {len(extend_params)} column "
                f"arguments but PacketRecord has {n_cols} fields"))

    # (c) counter parity: per-event hooks vs fold_batch_counts.
    on_arrival = _method(collector, "on_arrival")
    on_completion = _method(collector, "on_completion")
    fold = _method(collector, "fold_batch_counts")
    if on_arrival is not None and on_completion is not None and \
            fold is not None:
        scalar_counters = (_self_mutations(on_arrival) |
                           _self_mutations(on_completion))
        batched_counters = _self_mutations(fold)
        if scalar_counters != batched_counters:
            diff = sorted(scalar_counters ^ batched_counters)
            findings.append(_finding(
                metrics_py, fold.lineno, 0, "RPR010",
                "per-event hooks (on_arrival/on_completion) and "
                "fold_batch_counts mutate different counters: "
                f"{diff} differ"))

    # (d) summarize() constructs complete summaries.
    summary_fields: List[str] = []
    defaulted: Set[str] = set()
    for stmt in summary_cls.body:
        if isinstance(stmt, ast.AnnAssign) and \
                isinstance(stmt.target, ast.Name):
            summary_fields.append(stmt.target.id)
            if stmt.value is not None:
                defaulted.add(stmt.target.id)
    summarize = _method(collector, "summarize")
    if summarize is not None:
        for node in ast.walk(summarize):
            if isinstance(node, ast.Call) and \
                    isinstance(node.func, ast.Name) and \
                    node.func.id == "SimulationSummary":
                passed = {kw.arg for kw in node.keywords
                          if kw.arg is not None}
                required = set(summary_fields) - defaulted
                missing = sorted(required - passed)
                if missing:
                    findings.append(_finding(
                        metrics_py, node.lineno, 0, "RPR010",
                        "summarize() builds a SimulationSummary without "
                        f"{missing}; both engines' folds flow through "
                        "this constructor, so every non-defaulted field "
                        "must be passed"))

    # (e) the batched engine calls the fold-back with full-width rows.
    batch_tree = _parse_module(batch_py)
    if batch_tree is not None:
        for node in ast.walk(batch_tree):
            if not isinstance(node, ast.Call) or \
                    not isinstance(node.func, ast.Attribute):
                continue
            n_args = len(node.args) + len(node.keywords)
            if node.func.attr == "extend_columns" and n_args != n_cols:
                findings.append(_finding(
                    batch_py, node.lineno, 0, "RPR010",
                    f"extend_columns called with {n_args} columns; the "
                    f"record schema has {n_cols}"))
            if node.func.attr == "fold_batch_counts" and n_args != 4:
                findings.append(_finding(
                    batch_py, node.lineno, 0, "RPR010",
                    f"fold_batch_counts called with {n_args} args; the "
                    "counter fold takes 4"))

    # (f) every summary-table key is golden-covered or declared.
    declared: Dict[str, str] = {}
    decl_line = 1
    for stmt in tree.body:
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 and \
                isinstance(stmt.targets[0], ast.Name) and \
                stmt.targets[0].id == _GOLDEN_DECL:
            decl_line = stmt.lineno
            try:
                literal = ast.literal_eval(stmt.value)
            except (ValueError, SyntaxError):
                literal = None
            if isinstance(literal, dict):
                declared = {str(k): str(v) for k, v in literal.items()}
            break
    else:
        findings.append(_finding(
            metrics_py, 1, 0, "RPR010",
            f"sim/metrics.py must declare {_GOLDEN_DECL}: a literal dict "
            "naming each summary-table key no golden pins, with the "
            "reason it stays unpinned"))

    golden_keys = _golden_row_keys(goldens_dir)
    table_keys: List[Tuple[str, int]] = []
    for method_name in ("row", "reordering_row"):
        method = _method(summary_cls, method_name)
        if method is not None:
            for key in _dict_literal_keys(method):
                table_keys.append((key, method.lineno))
    for key, lineno in table_keys:
        if key not in golden_keys and key not in declared:
            findings.append(_finding(
                metrics_py, lineno, 0, "RPR010",
                f"summary key {key!r} appears in no golden field and is "
                f"not declared in {_GOLDEN_DECL}; an unpinned key is an "
                "unchecked metric"))
    produced = {k for k, _ in table_keys}
    for key, reason in sorted(declared.items()):
        if key not in produced:
            findings.append(_finding(
                metrics_py, decl_line, 0, "RPR010",
                f"stale {_GOLDEN_DECL} entry {key!r}: no summary table "
                "produces this key"))
        elif key in golden_keys:
            findings.append(_finding(
                metrics_py, decl_line, 0, "RPR010",
                f"stale {_GOLDEN_DECL} entry {key!r}: the goldens do "
                "cover this key now"))
        if not reason.strip():
            findings.append(_finding(
                metrics_py, decl_line, 0, "RPR010",
                f"{_GOLDEN_DECL} entry {key!r} has an empty reason"))
    return findings
