"""repro.lint — domain-specific static analysis for the reproduction.

An AST-based pass enforcing the properties the result cache
(:mod:`repro.runner.keys`), golden regression (:mod:`repro.verify`) and
the scalar↔batched engine-equivalence contract silently assume:

======  ==============================================================
RPR001  determinism — no ambient randomness; no wall clocks in
        result-affecting code
RPR002  ordering — no iteration over unordered sources feeding results
RPR003  units — time-valued names carry unit suffixes; no mixed-unit
        arithmetic
RPR004  cache-key hygiene — every SystemConfig field acknowledged in
        runner/keys.py (content key or observability exclusion)
RPR005  registry/golden conformance — every experiment registered and
        golden-covered
RPR006  pickle safety — pool submission targets are module-level
        functions
RPR007  hot-path batching — no per-event scalar dispatch inside the
        batched-engine modules
RPR008  config-read parity — every config field the scalar path reads
        is read by the fused batched engine or declared batch-irrelevant
RPR009  rng provenance — every result-affecting draw traces to
        sim/rng.py; RNG-consuming policies are fused or declared
        scalar fallbacks
RPR010  metrics schema parity — scalar fold and batched fold-back agree
        on the summary schema; every summary key is golden-pinned or
        declared uncovered
RPR011  suppression hygiene — no ignore comment outlives the finding it
        silenced
======  ==============================================================

RPR001–007 are per-file rules; RPR008–010 run on the interprocedural
substrate in :mod:`repro.lint.flow` (symbol tables, instance-binding
provenance, call graph) whenever the whole package is linted.

Run via ``repro lint [--select CODES] [--ignore CODES] [--format
text|github] [paths]``; suppress individual findings with
``# repro-lint: ignore[RPRnnn] <reason>``.  The full catalogue lives in
``docs/LINTING.md``.
"""

from .findings import Finding, RULES, is_known_code
from .engine import (
    lint_file,
    lint_paths,
    parse_code_list,
    render_github,
    render_report,
)
from .flow import (
    build_project_index,
    check_config_read_parity,
    check_metrics_schema_parity,
    check_rng_provenance,
)
from .project import check_cache_key_conformance, check_registry_conformance

__all__ = [
    "Finding",
    "RULES",
    "is_known_code",
    "lint_file",
    "lint_paths",
    "parse_code_list",
    "render_github",
    "render_report",
    "build_project_index",
    "check_cache_key_conformance",
    "check_config_read_parity",
    "check_metrics_schema_parity",
    "check_registry_conformance",
    "check_rng_provenance",
]
