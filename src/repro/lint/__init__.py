"""repro.lint — domain-specific static analysis for the reproduction.

An AST-based pass enforcing the properties the result cache
(:mod:`repro.runner.keys`) and golden regression (:mod:`repro.verify`)
silently assume:

======  ==============================================================
RPR001  determinism — no ambient randomness; no wall clocks in
        result-affecting code
RPR002  ordering — no iteration over unordered sources feeding results
RPR003  units — time-valued names carry unit suffixes; no mixed-unit
        arithmetic
RPR004  cache-key hygiene — every SystemConfig field acknowledged in
        runner/keys.py (content key or observability exclusion)
RPR005  registry/golden conformance — every experiment registered and
        golden-covered
RPR006  pickle safety — pool submission targets are module-level
        functions
RPR007  hot-path batching — no per-event scalar dispatch inside the
        batched-engine modules
======  ==============================================================

Run via ``repro lint [--select CODES] [--ignore CODES] [paths]``; suppress
individual findings with ``# repro-lint: ignore[RPRnnn] <reason>``.  The
full catalogue lives in ``docs/LINTING.md``.
"""

from .findings import Finding, RULES, is_known_code
from .engine import lint_file, lint_paths, parse_code_list, render_report
from .project import check_cache_key_conformance, check_registry_conformance

__all__ = [
    "Finding",
    "RULES",
    "is_known_code",
    "lint_file",
    "lint_paths",
    "parse_code_list",
    "render_report",
    "check_cache_key_conformance",
    "check_registry_conformance",
]
