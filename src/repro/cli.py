"""Command-line interface: ``python -m repro`` / the ``repro`` script.

Commands
--------
``repro list``
    Show the experiment index (id, title).
``repro run e06 [--full] [--seed N] [--jobs N] [--no-cache] [--cache-dir P]``
    Run one experiment and print its table/series.
``repro all [--full] [--seed N] [--with-extras] [--jobs N] [...]``
    Run the whole suite in order (the content of EXPERIMENTS.md);
    ``--with-extras`` appends the ablations (a01..a05) and extensions
    (x01..x03).
``repro csv OUTDIR [--full] [--seed N] [--with-extras] [--jobs N] [...]``
    Run every experiment and write its structured rows as
    ``OUTDIR/<id>.csv`` (for plotting outside the terminal).
``repro cache [--clear] [--cache-dir P]``
    Inspect (or clear) the persistent result cache, including the
    quarantine ledger (unreadable entries and mismatched distributed
    results parked for inspection).
``repro sweep status [SWEEP_ID] [--checkpoint-dir P]``
    Inspect checkpointed sweeps: done/pending/failed per journal, plus
    live worker/lease state when a distributed coordinator is running.
``repro sweep worker --address HOST:PORT [--transport tcp|file] [--id W]``
    Join a distributed sweep as an external worker agent
    (``docs/DISTRIBUTED.md``); exits when the coordinator says stop.
``repro verify record [--ids e01 e02] [--seed N] [--goldens DIR] [...]``
    Snapshot experiment outputs as golden JSON files (tests/goldens/).
``repro verify check [--ids e01 e02] [--rtol X] [--goldens DIR] [...]``
    Re-run the experiments and diff against the recorded goldens;
    exits non-zero with a per-experiment report on any drift.
``repro lint [--select CODES] [--ignore CODES] [paths]``
    Run the domain-specific static-analysis pass (determinism, ordering,
    units, cache-key, registry and pickle-safety conformance; rules
    RPR001..RPR006, see ``docs/LINTING.md``); exits non-zero on findings.
``repro faults [--seed N] [--jobs N] [--backend B] [--transport T] [...]``
    Run the deterministic fault-injection suite (worker crashes, hangs,
    cache corruption, interrupts — plus network chaos when
    ``--backend distributed``: dropped/delayed/duplicated frames,
    partitions, fleet loss) against the real runner and report PASS/FAIL
    per scenario (``docs/ROBUSTNESS.md``, ``docs/DISTRIBUTED.md``);
    exits non-zero on any failure.
``repro simulate --paradigm locking --policy mru --rate 12000 ...``
    One ad-hoc simulation with a summary printout.

Verification
------------
``--check-invariants`` (on ``run``/``all``/``csv``/``simulate`` and the
``verify`` subcommands) runs every simulation under the online
:class:`~repro.verify.invariants.InvariantChecker`; the first violated
invariant aborts with a diagnostic.  Combine with ``--no-cache`` when the
point is to *exercise* the checker — cache hits skip simulation entirely.

Parallelism and caching
-----------------------
``run``/``all``/``csv`` execute their sweeps through the
:mod:`repro.runner` subsystem: ``--jobs N`` fans the independent
simulations of each sweep out over N worker processes (``--jobs 0``, the
default, is the serial fallback; ``--jobs -1`` uses every CPU), with
output guaranteed identical to serial.  Results are cached on disk keyed
by config content + simulator code version (``docs/RUNNER.md``), so
re-runs skip already-computed points; ``--no-cache`` bypasses the cache
and ``--cache-dir`` relocates it.  Each invocation ends with a summary
line reporting simulations run, cache hits, and elapsed wall-clock.

Fault tolerance
---------------
Sweeps are fault-tolerant (``docs/ROBUSTNESS.md``): ``--timeout S``
bounds each simulation's wall clock, ``--retries N`` re-runs failed or
timed-out tasks with deterministic exponential backoff, crashed worker
pools are respawned transparently, and completed work is checkpointed so
an interrupted invocation (Ctrl-C, SIGTERM) can continue with
``--resume`` without recomputing anything.  Permanent failures are
reported as a structured summary and exit non-zero; ``--fail-fast``
stops at the first one.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import List, Optional

from .analysis.tables import format_kv
from .experiments.base import ALL_IDS, EXPERIMENT_IDS, load_experiment, run_experiment
from .runner import (
    BACKEND_NAMES,
    ResultCache,
    SweepExecutionError,
    SweepRunner,
    default_cache_dir,
    use_runner,
)
from .sim.system import SystemConfig, run_simulation
from .workloads.traffic import TrafficSpec

__all__ = ["main", "build_parser"]


def _add_runner_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs", type=int, default=0, metavar="N",
        help="worker processes for sweep fan-out (0 = serial, the default; "
             "-1 = one per CPU)")
    parser.add_argument(
        "--backend", choices=BACKEND_NAMES, default="warm",
        help="execution engine for --jobs > 1: 'warm' keeps persistent "
             "affinity-routed workers alive across sweeps (default), "
             "'pool' spawns a process pool per sweep, 'serial' forces "
             "in-process execution, 'distributed' leases task chunks to "
             "worker agents over a network transport (docs/DISTRIBUTED.md); "
             "results are bit-identical across backends (see docs/RUNNER.md)")
    parser.add_argument(
        "--transport", choices=("tcp", "file"), default="tcp",
        help="distributed-backend wire: 'tcp' (loopback sockets, default) "
             "or 'file' (shared-filesystem spool); ignored by other "
             "backends")
    parser.add_argument(
        "--spool-dir", default=None, metavar="PATH",
        help="spool root for --transport file (default: a private temp "
             "dir); point external `repro sweep worker` processes at the "
             "same path")
    parser.add_argument(
        "--no-cache", action="store_true",
        help="bypass the persistent result cache")
    parser.add_argument(
        "--cache-dir", default=None, metavar="PATH",
        help=f"result cache location (default: {default_cache_dir()})")
    parser.add_argument(
        "--check-invariants", action="store_true",
        help="run every simulation under the online invariant checker "
             "(conservation, busy-interval non-overlap, causality, lock "
             "mutual exclusion); combine with --no-cache to force execution")
    parser.add_argument(
        "--timeout", type=float, default=None, metavar="S",
        help="per-simulation wall-clock budget in seconds; over-budget "
             "tasks are reported as timeouts and retried (default: none)")
    parser.add_argument(
        "--retries", type=int, default=0, metavar="N",
        help="extra attempts per failed/timed-out simulation, with "
             "deterministic exponential backoff (default: 0)")
    parser.add_argument(
        "--resume", action="store_true",
        help="resume an interrupted sweep from its checkpoint journal, "
             "recomputing nothing already completed")
    parser.add_argument(
        "--fail-fast", action="store_true",
        help="stop at the first permanent task failure instead of "
             "completing the rest of the sweep")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of Salehi/Kurose/Towsley (HPDC-4 1995): "
            "scheduling for cache affinity in parallel network processing"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the experiment index")

    p_run = sub.add_parser("run", help="run one experiment")
    p_run.add_argument("experiment", choices=list(ALL_IDS))
    p_run.add_argument("--full", action="store_true",
                       help="publication-length horizons (slower)")
    p_run.add_argument("--seed", type=int, default=1)
    _add_runner_flags(p_run)

    p_all = sub.add_parser("all", help="run the whole suite")
    p_all.add_argument("--full", action="store_true")
    p_all.add_argument("--seed", type=int, default=1)
    p_all.add_argument("--with-extras", action="store_true",
                       help="also run ablations a01..a05 and extensions x01..x03")
    _add_runner_flags(p_all)

    p_csv = sub.add_parser("csv", help="write every experiment's rows as CSV")
    p_csv.add_argument("outdir")
    p_csv.add_argument("--full", action="store_true")
    p_csv.add_argument("--seed", type=int, default=1)
    p_csv.add_argument("--with-extras", action="store_true",
                       help="also write ablations a01..a05 and extensions "
                            "x01..x03 (matching `repro all --with-extras`)")
    _add_runner_flags(p_csv)

    p_cache = sub.add_parser("cache", help="inspect the persistent result cache")
    p_cache.add_argument("--clear", action="store_true",
                         help="delete every cached result")
    p_cache.add_argument("--cache-dir", default=None, metavar="PATH")

    p_sweep = sub.add_parser(
        "sweep", help="inspect checkpointed sweeps / join one as a worker")
    ssub = p_sweep.add_subparsers(dest="sweep_command", required=True)
    p_status = ssub.add_parser(
        "status", help="done/pending/leased/failed state of checkpointed "
                       "sweeps (live lease detail for running distributed "
                       "coordinators)")
    p_status.add_argument("sweep_id", nargs="?", default=None, metavar="SWEEP_ID",
                          help="sweep identity (prefix ok; default: list "
                               "every journal)")
    p_status.add_argument("--checkpoint-dir", default=None, metavar="PATH",
                          help="journal directory (default: "
                               "<cache-dir>/checkpoints)")
    p_status.add_argument("--cache-dir", default=None, metavar="PATH")
    p_worker = ssub.add_parser(
        "worker", help="run one external worker agent for a distributed "
                       "sweep coordinator")
    p_worker.add_argument("--address", required=True, metavar="ADDR",
                          help="coordinator address: host:port for tcp, "
                               "spool directory for file")
    p_worker.add_argument("--transport", choices=("tcp", "file"),
                          default="tcp")
    p_worker.add_argument("--id", default="ext0", metavar="WORKER_ID",
                          dest="worker_id",
                          help="worker identity reported to the coordinator "
                               "(must be unique per agent; default: ext0)")

    p_verify = sub.add_parser(
        "verify", help="golden-result regression (record / check)")
    vsub = p_verify.add_subparsers(dest="verify_command", required=True)
    p_rec = vsub.add_parser(
        "record", help="snapshot experiment outputs as goldens")
    p_rec.add_argument("--ids", nargs="+", default=None, metavar="ID",
                       choices=list(ALL_IDS),
                       help="experiments to record (default: e01..e14)")
    p_rec.add_argument("--seed", type=int, default=1)
    p_rec.add_argument("--full", action="store_true",
                       help="record publication-length grids (slower)")
    p_rec.add_argument("--goldens", default=None, metavar="DIR",
                       help="golden directory (default: tests/goldens)")
    _add_runner_flags(p_rec)
    p_chk = vsub.add_parser(
        "check", help="re-run experiments and diff against goldens")
    p_chk.add_argument("--ids", nargs="+", default=None, metavar="ID",
                       help="experiments to check (default: every golden)")
    p_chk.add_argument("--rtol", type=float, default=None,
                       help="relative tolerance for float fields "
                            "(default: 1e-3)")
    p_chk.add_argument("--goldens", default=None, metavar="DIR")
    _add_runner_flags(p_chk)

    p_faults = sub.add_parser(
        "faults", help="run the deterministic fault-injection suite "
                       "against the real runner (see docs/ROBUSTNESS.md)")
    p_faults.add_argument("--seed", type=int, default=1,
                          help="fault-plan seed (same seed = same faults)")
    p_faults.add_argument("--jobs", type=int, default=2, metavar="N",
                          help="worker processes for the parallel scenarios")
    p_faults.add_argument("--backend", choices=BACKEND_NAMES,
                          default="warm",
                          help="execution engine for the parallel scenarios; "
                               "'warm' also runs the warm-specific scenarios "
                               "(worker-cache loss, queue stealing) and "
                               "'distributed' the network-chaos scenarios "
                               "(drops, delays, duplicates, partitions, "
                               "fleet loss)")
    p_faults.add_argument("--transport", choices=("tcp", "file"),
                          default="tcp",
                          help="wire for the distributed scenarios "
                               "(default: tcp)")
    p_faults.add_argument("--workdir", default=None, metavar="PATH",
                          help="scratch directory for the scenarios' "
                               "caches/journals (default: a temp dir)")

    p_lint = sub.add_parser(
        "lint", help="run the domain-specific static-analysis pass "
                     "(RPR001..RPR013; see docs/LINTING.md)")
    p_lint.add_argument("paths", nargs="*", metavar="PATH",
                        help="files/directories to lint (default: the "
                             "installed repro package)")
    p_lint.add_argument("--select", default=None, metavar="CODES",
                        help="comma-separated rule codes to run "
                             "(e.g. RPR001,RPR003)")
    p_lint.add_argument("--ignore", default=None, metavar="CODES",
                        help="comma-separated rule codes to skip")
    p_lint.add_argument("--format", choices=("text", "github"),
                        default="text", dest="fmt",
                        help="output style: human-readable report or "
                             "GitHub Actions ::error annotations")
    p_lint.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")

    p_sim = sub.add_parser("simulate", help="one ad-hoc simulation")
    p_sim.add_argument("--paradigm", choices=("locking", "ips"), default="locking")
    p_sim.add_argument("--policy", default="mru")
    p_sim.add_argument("--rate", type=float, default=12_000.0,
                       help="aggregate arrival rate (packets/s)")
    p_sim.add_argument("--streams", type=int, default=8)
    p_sim.add_argument("--processors", type=int, default=8)
    p_sim.add_argument("--intensity", type=float, default=1.0,
                       help="non-protocol displacement intensity")
    p_sim.add_argument("--stacks", type=int, default=None,
                       help="IPS stack count (default: one per processor)")
    p_sim.add_argument("--burst", type=float, default=1.0,
                       help="mean burst size on stream 0 (1 = smooth)")
    p_sim.add_argument("--fixed-overhead-us", type=float, default=0.0,
                       help="cache-independent per-packet overhead (the V knob)")
    p_sim.add_argument("--lock-granularity", type=int, default=1,
                       help="Locking paradigm: number of per-layer locks")
    p_sim.add_argument("--duration-ms", type=float, default=500.0)
    p_sim.add_argument("--seed", type=int, default=1)
    p_sim.add_argument("--check-invariants", action="store_true",
                       help="run under the online invariant checker")
    return parser


def _make_runner(args: argparse.Namespace) -> SweepRunner:
    """Build the sweep runner requested by --jobs/--no-cache/--cache-dir."""
    jobs = None if args.jobs is not None and args.jobs < 0 else args.jobs
    cache = None if args.no_cache else ResultCache(args.cache_dir)
    backend = getattr(args, "backend", "warm")
    distributed_options = None
    if backend == "distributed":
        from .runner import DistributedOptions

        distributed_options = DistributedOptions(
            transport=getattr(args, "transport", "tcp"),
            spool_dir=getattr(args, "spool_dir", None))
    return SweepRunner(
        jobs=jobs, cache=cache,
        check_invariants=getattr(args, "check_invariants", False),
        backend=backend,
        distributed_options=distributed_options,
        timeout_s=getattr(args, "timeout", None),
        retries=getattr(args, "retries", 0),
        resume=getattr(args, "resume", False),
        fail_fast=getattr(args, "fail_fast", False))


def _print_runner_summary(runner: SweepRunner) -> None:
    runner.close()  # retire persistent warm workers before reporting
    print(f"[runner] {runner.stats.summary_line(runner.jobs_label())}")


def _cmd_list() -> int:
    for eid in EXPERIMENT_IDS:
        module = load_experiment(eid)
        print(f"{eid}: {module.TITLE}")
    from .experiments import ablations, extensions
    for aid in ("a01", "a02", "a03", "a04", "a05"):
        doc = getattr(ablations, f"run_{aid}").__doc__.splitlines()[0]
        print(f"{aid}: [ablation] {doc}")
    for xid in ("x01", "x02", "x03"):
        doc = getattr(extensions, f"run_{xid}").__doc__.splitlines()[0]
        print(f"{xid}: [extension] {doc}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    runner = _make_runner(args)
    with use_runner(runner):
        result = run_experiment(args.experiment, fast=not args.full,
                                seed=args.seed)
    print(result)
    _print_runner_summary(runner)
    return 0


def _cmd_all(args: argparse.Namespace) -> int:
    ids = ALL_IDS if args.with_extras else EXPERIMENT_IDS
    runner = _make_runner(args)
    with use_runner(runner):
        for eid in ids:
            t0 = time.perf_counter()
            before = runner.stats.snapshot()
            result = run_experiment(eid, fast=not args.full, seed=args.seed)
            delta = runner.stats.since(before)
            print(result)
            print(f"[{eid}] {delta.simulations} simulations "
                  f"({delta.cache_hits} cached) in "
                  f"{time.perf_counter() - t0:.1f}s")
            print()
    _print_runner_summary(runner)
    return 0


def _cmd_csv(args: argparse.Namespace) -> int:
    import os

    os.makedirs(args.outdir, exist_ok=True)
    ids = ALL_IDS if args.with_extras else EXPERIMENT_IDS
    runner = _make_runner(args)
    with use_runner(runner):
        for eid in ids:
            result = run_experiment(eid, fast=not args.full, seed=args.seed)
            path = os.path.join(args.outdir, f"{eid}.csv")
            result.to_csv(path)
            print(f"wrote {path} ({len(result.rows)} rows)")
    _print_runner_summary(runner)
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    cache = ResultCache(args.cache_dir)
    if args.clear:
        removed = cache.prune()
        print(f"cleared {removed} cached results from {cache.root}")
        return 0
    print(f"cache dir: {cache.root}")
    print(f"entries:   {len(cache)}")
    # Always surfaced, zero included: the quarantine ledger is where both
    # unreadable cache entries and mismatched distributed results land,
    # and "0 quarantined" is itself the health signal worth reading.
    print(f"quarantined: {cache.quarantined_entries()} entries parked in "
          f"{cache.quarantine_dir} (unreadable cache files and mismatched "
          f"distributed results; see docs/ROBUSTNESS.md)")
    return 0


def _cmd_faults(args: argparse.Namespace) -> int:
    import tempfile
    from pathlib import Path

    from .runner import run_fault_suite

    if args.workdir is not None:
        results = run_fault_suite(Path(args.workdir), jobs=args.jobs,
                                  seed=args.seed, backend=args.backend,
                                  transport=args.transport)
    else:
        with tempfile.TemporaryDirectory(prefix="repro-faults-") as tmp:
            results = run_fault_suite(Path(tmp), jobs=args.jobs,
                                      seed=args.seed, backend=args.backend,
                                      transport=args.transport)
    width = max(len(r.name) for r in results)
    for r in results:
        status = "PASS" if r.ok else "FAIL"
        print(f"{status}  {r.name:<{width}}  {r.detail}")
    failed = sum(1 for r in results if not r.ok)
    wire = (f", transport={args.transport}"
            if args.backend == "distributed" else "")
    print(f"[faults] {len(results) - failed}/{len(results)} scenarios passed "
          f"(seed={args.seed}, jobs={args.jobs}, backend={args.backend}"
          f"{wire})")
    return 1 if failed else 0


def _sweep_status_dir(args: argparse.Namespace) -> Path:
    if args.checkpoint_dir is not None:
        return Path(args.checkpoint_dir)
    cache_dir = args.cache_dir if args.cache_dir is not None else default_cache_dir()
    return Path(cache_dir) / "checkpoints"


def _print_sweep_entry(path: Path, verbose: bool) -> bool:
    """One journal's status block; returns False when unreadable."""
    import json

    from .runner import journal_status

    status = journal_status(path)
    if status is None:
        return False
    done, total = status["done"], status["total"]
    label = f" [{status['label']}]" if status["label"] else ""
    print(f"{status['sweep']}{label}: {done}/{total} done")
    state_path = path.with_name(path.stem + ".state.json")
    try:
        live = json.loads(state_path.read_text())
    except (OSError, ValueError):
        live = None
    if live is None:
        remaining = (total - done
                     if isinstance(total, int) and isinstance(done, int)
                     else 0)
        if remaining > 0:
            print(f"  no live coordinator; resume with --resume to finish "
                  f"the remaining {remaining} task(s)")
        return True
    workers = live.get("workers") or []
    leases = live.get("leases") or []
    print(f"  live {live.get('backend', '?')} coordinator: "
          f"{live.get('pending', '?')} pending, {len(leases)} leased, "
          f"{live.get('failed', '?')} failed; "
          f"{len(workers)} worker(s) registered")
    if verbose:
        for lease in leases:
            tasks = lease.get("tasks", [])
            print(f"  lease #{lease.get('lease')} -> {lease.get('worker')}: "
                  f"{len(tasks)} task(s), age {lease.get('age_s', 0):.1f}s, "
                  f"last beat {lease.get('beat_age_s', 0):.1f}s ago")
    return True


def _cmd_sweep(args: argparse.Namespace) -> int:
    if args.sweep_command == "worker":
        from .runner import run_worker_agent

        print(f"[worker {args.worker_id}] joining {args.transport} "
              f"coordinator at {args.address}", file=sys.stderr)
        run_worker_agent(args.transport, args.address, args.worker_id)
        return 0
    directory = _sweep_status_dir(args)
    journals = sorted(directory.glob("*.jsonl")) if directory.is_dir() else []
    if args.sweep_id is not None:
        journals = [p for p in journals if p.stem.startswith(args.sweep_id)]
        if not journals:
            print(f"repro sweep status: no journal matching "
                  f"{args.sweep_id!r} in {directory}", file=sys.stderr)
            return 1
    if not journals:
        print(f"no checkpointed sweeps in {directory} (journals are "
              f"deleted on clean completion — nothing to resume)")
        return 0
    shown = 0
    for path in journals:
        shown += 1 if _print_sweep_entry(path, args.sweep_id is not None) else 0
    if shown == 0:
        print(f"repro sweep status: no readable journal in {directory}",
              file=sys.stderr)
        return 1
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    from .verify import golden

    runner = _make_runner(args)
    directory = args.goldens
    if args.verify_command == "record":
        with use_runner(runner):
            written = golden.record(ids=args.ids, seed=args.seed,
                                    fast=not args.full, directory=directory)
        for path in written:
            print(f"recorded {path}")
        _print_runner_summary(runner)
        return 0
    rtol = args.rtol if args.rtol is not None else golden.DEFAULT_RTOL
    with use_runner(runner):
        report = golden.check(ids=args.ids, directory=directory, rtol=rtol)
    print(report.format())
    _print_runner_summary(runner)
    return 0 if report.ok else 1


def _cmd_lint(args: argparse.Namespace) -> int:
    from pathlib import Path

    from .lint import (
        RULES, lint_paths, parse_code_list, render_github, render_report,
    )

    if args.list_rules:
        for code, summary in sorted(RULES.items()):
            print(f"{code}  {summary}")
        return 0
    try:
        select = parse_code_list(args.select)
        ignore = parse_code_list(args.ignore)
    except ValueError as exc:
        print(f"repro lint: {exc}", file=sys.stderr)
        return 2
    paths = [Path(p) for p in args.paths] if args.paths else None
    findings = lint_paths(paths, select=select, ignore=ignore)
    render = render_github if args.fmt == "github" else render_report
    print(render(findings))
    return 1 if findings else 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    from .core.params import PlatformConfig

    if args.burst > 1.0:
        traffic = TrafficSpec.one_bursty_among_smooth(
            args.streams, args.rate, mean_batch=args.burst
        )
    else:
        traffic = TrafficSpec.homogeneous_poisson(args.streams, args.rate)
    cfg = SystemConfig(
        traffic=traffic,
        paradigm=args.paradigm,
        policy=args.policy,
        platform=PlatformConfig(n_processors=args.processors),
        nonprotocol_intensity=args.intensity,
        n_stacks=args.stacks,
        fixed_overhead_us=args.fixed_overhead_us,
        lock_granularity=args.lock_granularity,
        duration_us=args.duration_ms * 1000.0,
        warmup_us=args.duration_ms * 150.0,  # 15% warm-up
        seed=args.seed,
        check_invariants=args.check_invariants,
    )
    s = run_simulation(cfg)
    print(format_kv({
        "paradigm/policy": f"{args.paradigm}/{args.policy}",
        "offered rate (pps)": s.offered_rate_pps,
        "throughput (pps)": round(s.throughput_pps, 1),
        "packets measured": s.n_packets,
        "mean delay (us)": round(s.mean_delay_us, 1),
        "95% CI (us)": f"[{s.delay_ci_us[0]:.1f}, {s.delay_ci_us[1]:.1f}]",
        "mean service (us)": round(s.mean_exec_us, 1),
        "mean queueing (us)": round(s.mean_queueing_us, 1),
        "mean lock wait (us)": round(s.mean_lock_wait_us, 2),
        "p95 delay (us)": round(s.p95_delay_us, 1),
        "mean utilization": round(s.mean_utilization, 3),
        "stable": s.stable,
    }, title="simulation summary"))
    return 0


def _dispatch(args: argparse.Namespace) -> int:
    if args.command == "list":
        return _cmd_list()
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "all":
        return _cmd_all(args)
    if args.command == "csv":
        return _cmd_csv(args)
    if args.command == "cache":
        return _cmd_cache(args)
    if args.command == "sweep":
        return _cmd_sweep(args)
    if args.command == "verify":
        return _cmd_verify(args)
    if args.command == "lint":
        return _cmd_lint(args)
    if args.command == "faults":
        return _cmd_faults(args)
    if args.command == "simulate":
        return _cmd_simulate(args)
    raise AssertionError(f"unhandled command {args.command!r}")


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return _dispatch(args)
    except SweepExecutionError as exc:
        print(f"repro: {exc}", file=sys.stderr)
        return 1
    except KeyboardInterrupt:
        # The runner has already flushed its checkpoint journal and
        # printed a resume hint by the time this propagates.
        print("repro: interrupted", file=sys.stderr)
        return 130


if __name__ == "__main__":
    sys.exit(main())
