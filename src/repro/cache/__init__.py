"""Analytic cache model and trace-driven cache simulation substrate.

Implements the cache-modelling machinery of the paper's Section 3 and
Appendix A:

- :mod:`repro.cache.footprint` — Singh-Stone-Thiebaut footprint function
  ``u(R; L)`` with the published MVS workload constants;
- :mod:`repro.cache.flush` — set-occupancy model turning unique intervening
  lines into a displaced fraction ``F``;
- :mod:`repro.cache.hierarchy` — two-level R4400/Challenge hierarchy
  producing the paper's ``F1(x)`` and ``F2(x)``;
- :mod:`repro.cache.simulator` / :mod:`repro.cache.traces` /
  :mod:`repro.cache.validation` — exact trace-driven LRU simulation and the
  fit-and-compare pipeline used to validate the analytic model.
"""

from .flush import flushed_fraction, flushed_fraction_poisson, survival_fraction
from .fractal import FractalFit, estimate_fractal_dimension, predict_miss_ratio
from .footprint import MVS_WORKLOAD, FootprintFunction, mvs_footprint
from .hierarchy import (
    CHALLENGE_L2,
    R4400_L1D,
    R4400_L1I,
    CacheHierarchy,
    CacheLevelConfig,
    sgi_challenge_hierarchy,
)
from .simulator import AccessStats, CacheSimulator, measure_flushed_fraction
from .validation import (
    FlushComparison,
    FootprintSample,
    compare_flush_model,
    fit_footprint_constants,
    measure_footprint_samples,
)

__all__ = [
    "AccessStats",
    "CacheHierarchy",
    "CacheLevelConfig",
    "CacheSimulator",
    "CHALLENGE_L2",
    "FlushComparison",
    "FootprintFunction",
    "FootprintSample",
    "FractalFit",
    "MVS_WORKLOAD",
    "R4400_L1D",
    "R4400_L1I",
    "compare_flush_model",
    "estimate_fractal_dimension",
    "fit_footprint_constants",
    "flushed_fraction",
    "flushed_fraction_poisson",
    "measure_flushed_fraction",
    "measure_footprint_samples",
    "mvs_footprint",
    "predict_miss_ratio",
    "sgi_challenge_hierarchy",
    "survival_fraction",
]
