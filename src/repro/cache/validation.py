"""Validation pipeline: analytic cache model vs trace-driven simulation.

Two checks mirroring the validation lineage of the paper's analytic
components:

1. **Footprint fitting** (:func:`fit_footprint_constants`): measure
   ``u(R; L)`` on a synthetic trace at several ``(R, L)`` checkpoints and
   least-squares fit the Singh-Stone-Thiebaut constants
   ``(W, a, b, log10 d)`` — the same procedure [22] applied to the MVS
   trace.  The fit quality demonstrates the functional form is adequate
   for power-law-locality streams.

2. **Flush comparison** (:func:`compare_flush_model`): for a warmed
   footprint and an intervening trace, compare the analytic displaced
   fraction ``F`` (driven by the *fitted* footprint function) against the
   exact fraction measured by the trace-driven simulator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from .flush import flushed_fraction
from .footprint import FootprintFunction
from .hierarchy import CacheLevelConfig
from .simulator import measure_flushed_fraction

__all__ = [
    "FootprintSample",
    "measure_footprint_samples",
    "fit_footprint_constants",
    "FlushComparison",
    "compare_flush_model",
]


@dataclass(frozen=True)
class FootprintSample:
    """One measured point of the empirical footprint function."""

    references: int
    line_bytes: int
    unique_lines: int


def measure_footprint_samples(
    trace: np.ndarray,
    reference_counts: Sequence[int],
    line_sizes: Sequence[int],
) -> Tuple[FootprintSample, ...]:
    """Measure ``u(R; L)`` on a trace at given checkpoints.

    For each requested ``R`` (truncated trace prefix) and each line size
    ``L``, counts the unique lines referenced.  This is the raw data the
    constants are fitted to.
    """
    trace = np.asarray(trace, dtype=np.int64)
    samples = []
    for L in line_sizes:
        if L <= 0 or (L & (L - 1)):
            raise ValueError(f"line size must be a positive power of two, got {L}")
        shift = int(np.log2(L))
        lines = trace >> shift
        for R in reference_counts:
            if R <= 0 or R > len(trace):
                raise ValueError(
                    f"reference count {R} out of range for trace of {len(trace)}"
                )
            samples.append(
                FootprintSample(
                    references=int(R),
                    line_bytes=int(L),
                    unique_lines=int(np.unique(lines[:R]).size),
                )
            )
    return tuple(samples)


def fit_footprint_constants(
    samples: Sequence[FootprintSample], name: str = "fitted"
) -> FootprintFunction:
    """Least-squares fit of ``(W, a, b, log10 d)`` in log10 space.

    The model is linear in log space::

        log u = log W + a*log L + b*log R + log10_d*(log L * log R)   (base 10)

    so an ordinary least-squares solve over the samples recovers the four
    constants.  Requires samples spanning at least two distinct ``R`` and
    two distinct ``L`` values (otherwise the design matrix is singular).
    """
    if len(samples) < 4:
        raise ValueError("need at least 4 samples to fit 4 constants")
    log_R = np.array([np.log10(s.references) for s in samples])
    log_L = np.array([np.log10(s.line_bytes) for s in samples])
    log_u = np.array([np.log10(max(s.unique_lines, 1)) for s in samples])
    if np.unique(log_R).size < 2 or np.unique(log_L).size < 2:
        raise ValueError("samples must span >= 2 reference counts and >= 2 line sizes")
    design = np.column_stack([np.ones_like(log_R), log_L, log_R, log_L * log_R])
    coef, *_ = np.linalg.lstsq(design, log_u, rcond=None)
    log_W, a, b, log10_d = (float(c) for c in coef)
    return FootprintFunction(W=float(10.0 ** log_W), a=a, b=b, log10_d=log10_d, name=name)


@dataclass(frozen=True)
class FlushComparison:
    """Analytic-vs-measured displaced fractions at a series of checkpoints."""

    reference_counts: Tuple[int, ...]
    analytic: Tuple[float, ...]
    measured: Tuple[float, ...]

    @property
    def max_abs_error(self) -> float:
        return float(
            np.max(np.abs(np.asarray(self.analytic) - np.asarray(self.measured)))
        ) if self.reference_counts else 0.0

    @property
    def mean_abs_error(self) -> float:
        return float(
            np.mean(np.abs(np.asarray(self.analytic) - np.asarray(self.measured)))
        ) if self.reference_counts else 0.0


def compare_flush_model(
    config: CacheLevelConfig,
    footprint_fn: FootprintFunction,
    footprint_addresses: np.ndarray,
    intervening_trace: np.ndarray,
    checkpoints: Sequence[int],
) -> FlushComparison:
    """Analytic ``F`` vs simulator-measured displaced fraction.

    For each checkpoint ``R`` (a prefix length of the intervening trace),
    computes

    - analytic: ``F = flushed_fraction(u(R; L), S, A)`` using
      ``footprint_fn`` (typically fitted to the same trace family), and
    - measured: install the footprint in a fresh simulated cache, run the
      ``R``-prefix of the intervening trace, count evicted footprint lines.
    """
    analytic = []
    measured = []
    trace = np.asarray(intervening_trace, dtype=np.int64)
    for R in checkpoints:
        if R < 0 or R > len(trace):
            raise ValueError(f"checkpoint {R} out of range")
        u = footprint_fn.unique_lines(float(R), config.line_bytes)
        analytic.append(float(flushed_fraction(u, config.n_sets, config.associativity)))
        measured.append(
            measure_flushed_fraction(config, footprint_addresses, trace[:R])
        )
    return FlushComparison(
        reference_counts=tuple(int(r) for r in checkpoints),
        analytic=tuple(analytic),
        measured=tuple(measured),
    )
