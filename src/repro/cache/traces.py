"""Synthetic memory-reference trace generators.

The analytic footprint model of [22] was validated against real address
traces (a 200M-reference IBM/370 MVS trace).  We have no such trace, so —
per the reproduction's substitution rule — this module generates synthetic
address streams with controllable spatial and temporal locality.  They are
used by :mod:`repro.cache.validation` to exercise the same fit-and-compare
pipeline, and by the tests to check the trace-driven cache simulator.

All generators return ``numpy`` arrays of byte addresses (``int64``).
Randomness is always taken from an explicit ``numpy.random.Generator`` so
results are reproducible.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

__all__ = [
    "uniform_trace",
    "sequential_trace",
    "zipf_trace",
    "markov_locality_trace",
    "interleave_traces",
]


def _rng(rng: Optional[np.random.Generator]) -> np.random.Generator:
    if rng is None:
        raise ValueError("an explicit numpy Generator is required (pass rng=)")
    if not isinstance(rng, np.random.Generator):
        raise TypeError(f"rng must be a numpy.random.Generator, got {type(rng)!r}")
    return rng


def uniform_trace(n_refs: int, working_set_bytes: int, *,
                  rng: np.random.Generator,
                  base_address: int = 0) -> np.ndarray:
    """References uniformly distributed over a working set.

    No temporal locality beyond the working-set bound itself — the
    worst-case displacing workload for a fixed working-set size.
    """
    rng = _rng(rng)
    if n_refs < 0:
        raise ValueError("n_refs must be non-negative")
    if working_set_bytes <= 0:
        raise ValueError("working_set_bytes must be positive")
    return base_address + rng.integers(0, working_set_bytes, size=n_refs, dtype=np.int64)


def sequential_trace(n_refs: int, *, stride_bytes: int = 4,
                     base_address: int = 0) -> np.ndarray:
    """A pure streaming access pattern (e.g. copying / checksumming).

    Touches ``n_refs`` addresses at a fixed stride — maximal spatial
    locality, zero reuse.  Models the data-touching operations whose cache
    behaviour motivates the paper's E14 analysis.
    """
    if n_refs < 0:
        raise ValueError("n_refs must be non-negative")
    if stride_bytes <= 0:
        raise ValueError("stride_bytes must be positive")
    return base_address + stride_bytes * np.arange(n_refs, dtype=np.int64)


def zipf_trace(n_refs: int, working_set_bytes: int, *,
               rng: np.random.Generator,
               skew: float = 1.2, granule_bytes: int = 64,
               base_address: int = 0) -> np.ndarray:
    """Zipf-distributed references over working-set granules.

    Produces power-law temporal locality: a footprint function measured on
    this trace grows sub-linearly in the reference count, the qualitative
    property the Singh-Stone-Thiebaut form (power function of ``R`` [26])
    captures.  ``skew > 1`` concentrates references on hot granules; the
    granule's interior offset is uniform, giving tunable spatial locality.
    """
    rng = _rng(rng)
    if skew <= 1.0:
        raise ValueError("skew must be > 1 for a proper Zipf distribution")
    if granule_bytes <= 0 or working_set_bytes < granule_bytes:
        raise ValueError("need working_set_bytes >= granule_bytes > 0")
    n_granules = working_set_bytes // granule_bytes
    # Sample Zipf ranks, rejecting the tail beyond the working set; then
    # randomly permute rank->granule so hot granules are scattered in the
    # address space (as in real programs) rather than clustered at 0.
    ranks = rng.zipf(skew, size=n_refs).astype(np.int64)
    over = ranks > n_granules
    while np.any(over):
        ranks[over] = rng.zipf(skew, size=int(over.sum()))
        over = ranks > n_granules
    perm = rng.permutation(n_granules)
    granules = perm[ranks - 1]
    offsets = rng.integers(0, granule_bytes, size=n_refs, dtype=np.int64)
    return base_address + granules * granule_bytes + offsets


def markov_locality_trace(n_refs: int, working_set_bytes: int, *,
                          rng: np.random.Generator,
                          stay_probability: float = 0.9,
                          region_bytes: int = 1024,
                          base_address: int = 0) -> np.ndarray:
    """Two-level locality: a random walk over regions with sticky regions.

    With probability ``stay_probability`` the next reference stays in the
    current region (uniform within it); otherwise it jumps to a uniformly
    chosen region.  Produces phase-like behaviour reminiscent of program
    working-set transitions.
    """
    rng = _rng(rng)
    if not (0.0 <= stay_probability < 1.0):
        raise ValueError("stay_probability must be in [0, 1)")
    if region_bytes <= 0 or working_set_bytes < region_bytes:
        raise ValueError("need working_set_bytes >= region_bytes > 0")
    n_regions = working_set_bytes // region_bytes
    jumps = rng.random(n_refs) >= stay_probability
    # Region id evolves as a piecewise-constant sequence; compute the
    # region at each step vectorized via cumulative counting of jumps.
    jump_targets = rng.integers(0, n_regions, size=n_refs, dtype=np.int64)
    region = np.empty(n_refs, dtype=np.int64)
    current = int(rng.integers(0, n_regions))
    # This loop is O(n) python; traces used in tests are <= ~1e6 refs.
    for i in range(n_refs):
        if jumps[i]:
            current = int(jump_targets[i])
        region[i] = current
    offsets = rng.integers(0, region_bytes, size=n_refs, dtype=np.int64)
    return base_address + region * region_bytes + offsets


def interleave_traces(*traces: np.ndarray) -> np.ndarray:
    """Round-robin interleave several traces (e.g. I-stream and D-stream).

    Traces are truncated to the shortest length, then interleaved
    reference-by-reference.
    """
    if not traces:
        raise ValueError("need at least one trace")
    n = min(len(t) for t in traces)
    out = np.empty(n * len(traces), dtype=np.int64)
    for k, t in enumerate(traces):
        out[k :: len(traces)] = t[:n]
    return out
