"""Trace-driven set-associative cache simulator.

A faithful (if deliberately simple) LRU cache simulator used to *validate*
the analytic flush model: warm the cache with a protocol-like footprint,
run an intervening displacing trace through it, and measure directly which
fraction of the footprint was evicted.  This mirrors the validation lineage
behind the paper's analytic components ([22, 25] validate their models
against real traces).

The simulator is exact per-reference.  It is implemented with dict/OrderedDict
per set (amortized O(1) per access) rather than NumPy, because LRU state
updates are inherently sequential; traces used in tests and validation are
small enough (<= a few million references) that this is fast in practice.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Iterable, List, Set

import numpy as np

from .hierarchy import CacheLevelConfig

__all__ = ["AccessStats", "CacheSimulator", "measure_flushed_fraction"]


@dataclass
class AccessStats:
    """Hit/miss counters returned by :meth:`CacheSimulator.access_trace`."""

    accesses: int = 0
    hits: int = 0
    misses: int = 0

    @property
    def miss_ratio(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    @property
    def hit_ratio(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    def __add__(self, other: "AccessStats") -> "AccessStats":
        return AccessStats(
            accesses=self.accesses + other.accesses,
            hits=self.hits + other.hits,
            misses=self.misses + other.misses,
        )


class CacheSimulator:
    """Exact set-associative LRU cache over byte-address traces.

    Parameters
    ----------
    config:
        Geometry of the simulated cache level.  ``split_fraction`` is
        ignored here — the caller decides which references reach this
        cache.
    """

    def __init__(self, config: CacheLevelConfig) -> None:
        self.config = config
        self._n_sets = config.n_sets
        self._assoc = config.associativity
        self._line_shift = int(np.log2(config.line_bytes))
        if (1 << self._line_shift) != config.line_bytes:
            raise ValueError("line_bytes must be a power of two")
        # sets[s] maps line_id -> None in LRU order (oldest first).
        self._sets: List["OrderedDict[int, None]"] = [
            OrderedDict() for _ in range(self._n_sets)
        ]

    # ------------------------------------------------------------------
    # Address arithmetic
    # ------------------------------------------------------------------
    def line_of(self, address: int) -> int:
        """Line id containing a byte address."""
        return int(address) >> self._line_shift

    def lines_of(self, addresses: np.ndarray) -> np.ndarray:
        """Vectorized line ids for an address trace."""
        return np.asarray(addresses, dtype=np.int64) >> self._line_shift

    def set_of_line(self, line_id: int) -> int:
        return line_id % self._n_sets

    # ------------------------------------------------------------------
    # Core access path
    # ------------------------------------------------------------------
    def access_line(self, line_id: int) -> bool:
        """Touch one line; returns ``True`` on hit.

        On a hit the line moves to MRU position; on a miss it is inserted
        and, if the set is full, the LRU line is evicted.
        """
        s = self._sets[line_id % self._n_sets]
        if line_id in s:
            s.move_to_end(line_id)
            return True
        s[line_id] = None
        if len(s) > self._assoc:
            s.popitem(last=False)
        return False

    def access_trace(self, addresses: Iterable[int]) -> AccessStats:
        """Run a byte-address trace through the cache."""
        stats = AccessStats()
        sets = self._sets
        n_sets = self._n_sets
        assoc = self._assoc
        shift = self._line_shift
        hits = 0
        n = 0
        for a in np.asarray(addresses, dtype=np.int64):
            line = int(a) >> shift
            s = sets[line % n_sets]
            if line in s:
                s.move_to_end(line)
                hits += 1
            else:
                s[line] = None
                if len(s) > assoc:
                    s.popitem(last=False)
            n += 1
        stats.accesses = n
        stats.hits = hits
        stats.misses = n - hits
        return stats

    # ------------------------------------------------------------------
    # Footprint conditioning / inspection
    # ------------------------------------------------------------------
    def flush(self) -> None:
        """Empty the cache entirely (power-on state)."""
        for s in self._sets:
            s.clear()

    def warm_with_lines(self, line_ids: Iterable[int]) -> None:
        """Install a footprint (by line id) as if just referenced."""
        for line in line_ids:
            self.access_line(int(line))

    def warm_with_addresses(self, addresses: Iterable[int]) -> None:
        """Install a footprint given as byte addresses."""
        for line in self.lines_of(np.asarray(list(addresses), dtype=np.int64)):
            self.access_line(int(line))

    def resident_lines(self) -> Set[int]:
        """The set of line ids currently cached."""
        out: Set[int] = set()
        for s in self._sets:
            out.update(s.keys())
        return out

    def resident_fraction(self, footprint_lines: Iterable[int]) -> float:
        """Fraction of a footprint (line ids) still resident."""
        fp = set(int(x) for x in footprint_lines)
        if not fp:
            return 1.0
        resident = self.resident_lines()
        return len(fp & resident) / len(fp)

    def unique_lines_in(self, addresses: np.ndarray) -> int:
        """Count unique lines touched by a trace (for footprint fitting)."""
        return int(np.unique(self.lines_of(addresses)).size)

    @property
    def occupancy(self) -> int:
        """Number of lines currently resident."""
        return sum(len(s) for s in self._sets)


def measure_flushed_fraction(
    config: CacheLevelConfig,
    footprint_addresses: np.ndarray,
    intervening_addresses: np.ndarray,
) -> float:
    """Directly measure the displaced fraction of a footprint.

    Installs ``footprint_addresses`` into a fresh cache, runs
    ``intervening_addresses`` through it, and reports the fraction of the
    footprint's lines no longer resident — the empirical counterpart of the
    analytic ``F`` of :func:`repro.cache.flush.flushed_fraction`.
    """
    sim = CacheSimulator(config)
    sim.warm_with_addresses(np.asarray(footprint_addresses))
    footprint_lines = {
        int(x) for x in sim.lines_of(np.asarray(footprint_addresses, dtype=np.int64))
    }
    # Only footprint lines actually resident after warming count (a
    # footprint larger than the cache can never be fully resident).
    resident_before = sim.resident_lines() & footprint_lines
    if not resident_before:
        return 1.0
    sim.access_trace(np.asarray(intervening_addresses))
    resident_after = sim.resident_lines() & resident_before
    return 1.0 - len(resident_after) / len(resident_before)
