"""Singh-Stone-Thiebaut footprint function ``u(R; L)``.

The analytic cache model of the paper (Section 3 / Appendix A) rests on the
*footprint function* of Singh, Stone and Thiebaut [22]:

.. math::

    u(R; L) = W \\cdot L^{a} \\cdot R^{b} \\cdot d^{\\log_{10} L \\cdot \\log_{10} R}

where ``u(R; L)`` is the expected number of *unique* memory lines referenced
by a workload in ``R`` memory references, for a cache line size of ``L``
bytes.  The constants relate to properties of the reference stream:

``W``
    working-set scale,
``a``
    spatial locality,
``b``
    temporal locality (it had previously been shown [26] that ``u`` is a
    power function of ``R`` for fixed ``L``),
``log10 d``
    interaction between spatial and temporal locality.

The paper parameterizes the *non-protocol* workload with the constants that
[22] fitted to a 200-million-reference trace of a multiprogrammed IBM/370
MVS workload (user applications plus operating system activity)::

    W = 2.19827, a = 0.033233, b = 0.827457, log10 d = -0.13025

Those exact constants are exposed here as :data:`MVS_WORKLOAD`.

Logarithms are **base 10**.  The captured paper text writes only "log d";
base 10 is the interpretation under which the model produces physically
sensible footprints (with base-2 logs the interaction term collapses the
MVS footprint to ~tens of lines per 10^4 references, and the resulting
flush timescales contradict the paper's own observation that L1 flushes
within milliseconds while L2 persists much longer).  See DESIGN.md §4.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

import numpy as np

__all__ = [
    "FootprintFunction",
    "MVS_WORKLOAD",
    "mvs_footprint",
]


@dataclass(frozen=True)
class FootprintFunction:
    """The footprint function ``u(R; L)`` with workload-specific constants.

    Instances are immutable value objects; all evaluation methods accept
    scalars or NumPy arrays and broadcast in the usual way.

    Parameters
    ----------
    W:
        Working-set scale constant (``W > 0``).
    a:
        Spatial-locality exponent applied to the line size ``L``.
    b:
        Temporal-locality exponent applied to the reference count ``R``.
        For a physically sensible model ``0 < b <= 1`` (sub-linear growth
        of the working set with the number of references).
    log10_d:
        Base-10 logarithm of the interaction constant ``d``.  Negative values
        mean larger lines grow the footprint more slowly as the reference
        count increases.
    name:
        Optional human-readable label for reports.
    """

    W: float
    a: float
    b: float
    log10_d: float
    name: str = ""

    def __post_init__(self) -> None:
        if self.W <= 0.0:
            raise ValueError(f"W must be positive, got {self.W}")
        if self.b <= 0.0:
            raise ValueError(f"b must be positive, got {self.b}")

    def unique_lines(self, references: Union[float, np.ndarray],
                     line_bytes: Union[float, np.ndarray]) -> Union[float, np.ndarray]:
        """Expected unique lines touched in ``references`` references.

        Parameters
        ----------
        references:
            Number of memory references ``R`` (scalar or array, >= 0).
            Non-integer values are permitted: the model is continuous and
            the simulation produces fractional expected reference counts.
        line_bytes:
            Cache line size ``L`` in bytes (scalar or array, > 0).

        Returns
        -------
        ``u(R; L)`` with the same broadcast shape as the inputs.  ``R = 0``
        maps to ``u = 0`` (the power-law expression is only defined for
        ``R >= 1``; below one reference we clamp to zero, which is the
        physically correct limit).
        """
        R = np.asarray(references, dtype=np.float64)
        L = np.asarray(line_bytes, dtype=np.float64)
        if np.any(L <= 0):
            raise ValueError("line_bytes must be positive")
        if np.any(R < 0):
            raise ValueError("references must be non-negative")
        # Work in log10 space for numerical stability across the ~8 decades
        # of R swept by the experiments.
        with np.errstate(divide="ignore"):
            log_R = np.log10(np.maximum(R, 1.0))
        log_L = np.log10(L)
        log_u = (
            np.log10(self.W)
            + self.a * log_L
            + self.b * log_R
            + self.log10_d * log_L * log_R
        )
        u = np.power(10.0, log_u)
        # Below one reference the power law is extrapolated linearly from
        # u(1; L); a footprint can also never exceed the reference count,
        # nor be non-zero with zero references.
        u1 = np.power(10.0, np.log10(self.W) + self.a * log_L)
        u = np.where(R < 1.0, R * u1, u)
        u = np.minimum(u, R)
        if np.ndim(references) == 0 and np.ndim(line_bytes) == 0:
            return float(u)
        return u

    def references_for_lines(self, unique_lines: float,
                             line_bytes: float) -> float:
        """Invert ``u(R; L)`` for ``R`` at a fixed line size.

        Useful for answering "how many intervening references flush a
        footprint of ``n`` lines?" style questions in tests and analyses.
        Only valid where the model is monotone in ``R`` (which holds for all
        published constant sets, since ``b + log10_d * log10(L)`` stays
        positive for practical line sizes).
        """
        n = float(unique_lines)
        L = float(line_bytes)
        if n <= 0:
            return 0.0
        log_L = np.log10(L)
        slope = self.b + self.log10_d * log_L
        if slope <= 0:
            raise ValueError(
                f"footprint model not invertible at L={L}: effective "
                f"exponent b + log10_d*log10(L) = {slope:.4f} <= 0"
            )
        log_R = (np.log10(n) - np.log10(self.W) - self.a * log_L) / slope
        return float(np.power(10.0, log_R))

    def effective_exponent(self, line_bytes: float) -> float:
        """Exponent of ``R`` at fixed ``L``: ``b + log10_d * log10(L)``.

        [26] showed ``u(R; L)`` is a power function of ``R`` for fixed
        ``L``; this returns that power.
        """
        return float(self.b + self.log10_d * np.log10(float(line_bytes)))


#: Constants fitted by Singh, Stone and Thiebaut [22] to a 200M-reference
#: multiprogrammed IBM/370 MVS trace; the paper uses exactly these to model
#: the displacing non-protocol workload.
MVS_WORKLOAD = FootprintFunction(
    W=2.19827,
    a=0.033233,
    b=0.827457,
    log10_d=-0.13025,
    name="IBM/370 MVS multiprogrammed workload [22]",
)


def mvs_footprint() -> FootprintFunction:
    """Return the paper's non-protocol workload footprint function."""
    return MVS_WORKLOAD
