"""Set-occupancy flush model: fraction of a footprint displaced by a burst
of intervening references.

Appendix A of the paper derives ``F(x)`` — the fraction of the cached
protocol footprint displaced by intervening non-protocol processing — by
assuming the intervening ``u(R; L)`` unique lines map *independently and
uniformly* into the cache sets (the same assumption is made in [24, 25]).

Let ``X`` be the number of intervening lines landing in a randomly chosen
set; then ``X ~ Binomial(n = u(R; L), p = 1/S)`` for ``S`` sets.  For an
``A``-way set-associative cache with LRU replacement, a resident protocol
line survives only if fewer than ``A`` distinct intervening lines landed in
its set (LRU evicts the protocol line once ``A`` newer lines arrived), so

.. math::

    F = P(X \\ge A) = 1 - \\sum_{k=0}^{A-1} \\binom{n}{k} p^k (1-p)^{n-k}.

Both cache levels of the paper's platform (MIPS R4400 primary caches and
the SGI Challenge secondary cache) are direct-mapped (``A = 1``), where the
expression reduces to ``F = 1 - (1 - 1/S)^n`` — exactly the form used in
the paper.  The general ``A`` is implemented so that other platforms can be
modelled.

The binomial is evaluated through the regularized incomplete beta function
(exact, vectorized, numerically stable for the ``n ~ 1e7`` reference counts
the sweeps produce); a Poisson limit is also provided for cross-checking.
"""

from __future__ import annotations

from typing import Union

import numpy as np
from scipy import special

__all__ = [
    "flushed_fraction",
    "flushed_fraction_poisson",
    "survival_fraction",
]


def _validate(n_unique_lines: Union[float, np.ndarray], n_sets: int,
              associativity: int) -> np.ndarray:
    if n_sets < 1:
        raise ValueError(f"n_sets must be >= 1, got {n_sets}")
    if associativity < 1:
        raise ValueError(f"associativity must be >= 1, got {associativity}")
    n = np.asarray(n_unique_lines, dtype=np.float64)
    if np.any(n < 0):
        raise ValueError("n_unique_lines must be non-negative")
    return n


def flushed_fraction(n_unique_lines: Union[float, np.ndarray], n_sets: int,
                     associativity: int = 1) -> Union[float, np.ndarray]:
    """Fraction of a resident footprint displaced by intervening lines.

    Parameters
    ----------
    n_unique_lines:
        Number of *unique* intervening lines ``n = u(R; L)`` (scalar or
        array; fractional values are allowed and interpolated continuously).
    n_sets:
        Number of cache sets ``S``.
    associativity:
        Set associativity ``A`` (LRU within a set).  ``A = 1``
        (direct-mapped) matches the paper's platform.

    Returns
    -------
    ``F = P(X >= A)`` where ``X ~ Binomial(n, 1/S)``, broadcast over the
    input shape.  Values lie in ``[0, 1]`` and are non-decreasing in ``n``.
    """
    n = _validate(n_unique_lines, n_sets, associativity)
    A = int(associativity)
    p = 1.0 / float(n_sets)

    if A == 1:
        # Direct-mapped: F = 1 - (1 - p)^n, computed via expm1/log1p to
        # retain precision for tiny p and huge n.
        out = -np.expm1(n * np.log1p(-p)) if p < 1.0 else np.where(n >= 1.0, 1.0, n)
    else:
        # P(X >= A) = I_p(A, n - A + 1)  (regularized incomplete beta).
        # betainc requires n - A + 1 > 0; for n <= A - 1 the probability of
        # seeing >= A successes in n trials is exactly 0.
        out = np.where(
            n > A - 1,
            special.betainc(A, np.maximum(n - A + 1.0, 1e-12), p),
            0.0,
        )
    out = np.clip(out, 0.0, 1.0)
    if np.ndim(n_unique_lines) == 0:
        return float(out)
    return out


def flushed_fraction_poisson(n_unique_lines: Union[float, np.ndarray], n_sets: int,
                             associativity: int = 1) -> Union[float, np.ndarray]:
    """Poisson-limit approximation of :func:`flushed_fraction`.

    With ``n`` large and ``p = 1/S`` small, ``X`` is approximately
    ``Poisson(lambda = n/S)`` and ``P(X >= A) = P(Gamma(A) <= lambda)``
    (regularized lower incomplete gamma).  Provided for validation and for
    closed-form analysis work; the simulator uses the exact binomial form.
    """
    n = _validate(n_unique_lines, n_sets, associativity)
    lam = n / float(n_sets)
    out = special.gammainc(float(associativity), lam)
    out = np.clip(out, 0.0, 1.0)
    if np.ndim(n_unique_lines) == 0:
        return float(out)
    return out


def survival_fraction(n_unique_lines: Union[float, np.ndarray], n_sets: int,
                      associativity: int = 1) -> Union[float, np.ndarray]:
    """Complement ``1 - F``: fraction of the footprint still resident."""
    f = flushed_fraction(n_unique_lines, n_sets, associativity)
    return 1.0 - f
