"""Fractal-dimension analysis of reference streams (Thiebaut [26]).

The footprint function's power-law form rests on Thiebaut's observation
that program reference streams behave like *fractal walks*: the number of
unique addresses visited in ``R`` references grows as ``u ~ W * R^(1/D)``
with ``D`` the walk's fractal dimension ("it had been previously shown
that u(R; L) is a power function of R for fixed L [26]").  ``D`` is a
compact locality descriptor:

- ``D -> 1``: a sweeping walk (streaming access, no reuse);
- larger ``D``: increasingly sticky, reuse-heavy walks.

This module estimates ``(W, D)`` from a trace by regressing
``log u`` on ``log R``, and applies [26]'s application: predicting the
steady-state **miss ratio** of an LRU cache of ``C`` lines as the growth
rate of the footprint at the moment it fills the cache,

.. math::

    m(C) \\approx u'(R_C), \\qquad u(R_C) = C

(each new unique line past the cache's reach is a miss).  The prediction
is validated against the exact trace-driven simulator in the tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Union

import numpy as np

__all__ = ["FractalFit", "estimate_fractal_dimension", "predict_miss_ratio"]


@dataclass(frozen=True)
class FractalFit:
    """Power-law fit ``u(R) = W * R^(1/D)`` of a reference stream."""

    W: float
    dimension: float
    r_squared: float
    line_bytes: int

    @property
    def exponent(self) -> float:
        """The growth exponent ``1/D``."""
        return 1.0 / self.dimension

    def unique_lines(self, references: Union[float, np.ndarray]) -> np.ndarray:
        """Evaluate the fitted footprint growth."""
        R = np.asarray(references, dtype=np.float64)
        return self.W * np.power(R, self.exponent)

    def references_to_fill(self, cache_lines: int) -> float:
        """``R_C`` such that the footprint reaches ``cache_lines``."""
        if cache_lines < 1:
            raise ValueError("cache_lines must be >= 1")
        return float((cache_lines / self.W) ** self.dimension)


def estimate_fractal_dimension(
    trace: np.ndarray,
    line_bytes: int = 1,
    checkpoints: Sequence[int] = (),
) -> FractalFit:
    """Fit ``(W, D)`` to a trace's unique-line growth curve.

    Checkpoints default to ~12 log-spaced prefix lengths.  The fit is an
    ordinary least-squares regression in log-log space; ``r_squared``
    reports how power-law-like the walk actually is (sweeping and Zipf
    walks fit well; phase-change traces fit poorly — inspect it).
    """
    trace = np.asarray(trace, dtype=np.int64)
    if len(trace) < 10:
        raise ValueError("trace too short to fit (need >= 10 references)")
    if line_bytes < 1 or (line_bytes & (line_bytes - 1)):
        raise ValueError("line_bytes must be a positive power of two")
    lines = trace >> int(np.log2(line_bytes))
    if not checkpoints:
        checkpoints = np.unique(
            np.logspace(1, np.log10(len(trace)), 12).astype(int)
        )
    counts = []
    for R in checkpoints:
        if R < 1 or R > len(trace):
            raise ValueError(f"checkpoint {R} out of range")
        counts.append(np.unique(lines[:R]).size)
    log_R = np.log10(np.asarray(checkpoints, dtype=np.float64))
    log_u = np.log10(np.maximum(np.asarray(counts, dtype=np.float64), 1.0))
    slope, intercept = np.polyfit(log_R, log_u, 1)
    predicted = slope * log_R + intercept
    ss_res = float(np.sum((log_u - predicted) ** 2))
    ss_tot = float(np.sum((log_u - log_u.mean()) ** 2))
    r_squared = 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0
    slope = float(np.clip(slope, 1e-6, 1.0))  # physical exponent in (0, 1]
    return FractalFit(
        W=float(10.0 ** intercept),
        dimension=1.0 / slope,
        r_squared=r_squared,
        line_bytes=line_bytes,
    )


def predict_miss_ratio(fit: FractalFit, cache_lines: int) -> float:
    """[26]-style steady-state LRU miss-ratio prediction.

    ``m(C) = u'(R_C)`` with ``u(R) = W R^(1/D)``: once the walk's live
    footprint exceeds the cache, every *newly visited* unique line misses,
    and the rate of new unique lines at that horizon is the derivative of
    the footprint curve.  A sweeping walk (D=1) predicts ``m = W``
    (clamped to 1); very sticky walks predict tiny miss ratios.
    """
    if cache_lines < 1:
        raise ValueError("cache_lines must be >= 1")
    exponent = fit.exponent
    R_c = fit.references_to_fill(cache_lines)
    if R_c <= 1.0:
        return 1.0  # cache smaller than the instantaneous working set
    m = fit.W * exponent * R_c ** (exponent - 1.0)
    return float(np.clip(m, 0.0, 1.0))
