"""Two-level cache hierarchy model of the experimental platform.

Combines the footprint function (:mod:`repro.cache.footprint`) with the
set-occupancy flush model (:mod:`repro.cache.flush`) to produce the paper's
``F1(x)`` and ``F2(x)``: the fractions of the protocol footprint displaced
from the L1 and L2 caches by intervening processing that issued references
for a duration ``x``.

Platform specifics captured here (paper Section 3 / Appendix A):

- the MIPS R4400 runs at 100 MHz and averages ``m = 5`` clock cycles per
  memory reference, giving 20 million references per second of intervening
  execution;
- the R4400 primary cache is *split* into I- and D-caches, and the
  reference stream is assumed to split approximately equally between the
  two (the paper validates the assumption against Table 1 of Hill & Smith
  [7]), so each L1 cache sees half of the intervening references;
- the secondary cache is unified and much larger, so "the protocol
  footprint is flushed much more slowly from L2 than from L1".

The concrete Challenge/R4400 geometry (16 KB split L1 with 32 B lines,
1 MB unified direct-mapped L2 with 128 B lines) is exposed as
:func:`sgi_challenge_hierarchy`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple, Union

import numpy as np

from .flush import flushed_fraction
from .footprint import MVS_WORKLOAD, FootprintFunction

__all__ = [
    "CacheLevelConfig",
    "CacheHierarchy",
    "sgi_challenge_hierarchy",
    "R4400_L1D",
    "R4400_L1I",
    "CHALLENGE_L2",
]


@dataclass(frozen=True)
class CacheLevelConfig:
    """Geometry of one cache level.

    Parameters
    ----------
    size_bytes:
        Total capacity of the cache in bytes.
    line_bytes:
        Line (block) size ``L`` in bytes.
    associativity:
        Set associativity ``A``; 1 means direct-mapped.
    split_fraction:
        Fraction of the reference stream this cache observes.  A split
        primary D-cache that sees half of all references uses ``0.5``; a
        unified cache uses ``1.0``.
    name:
        Label used in tables and plots.
    """

    size_bytes: int
    line_bytes: int
    associativity: int = 1
    split_fraction: float = 1.0
    name: str = ""

    def __post_init__(self) -> None:
        if self.size_bytes <= 0 or self.line_bytes <= 0:
            raise ValueError("cache size and line size must be positive")
        if self.size_bytes % self.line_bytes:
            raise ValueError(
                f"size_bytes ({self.size_bytes}) must be a multiple of "
                f"line_bytes ({self.line_bytes})"
            )
        if self.associativity < 1:
            raise ValueError("associativity must be >= 1")
        n_lines = self.size_bytes // self.line_bytes
        if n_lines % self.associativity:
            raise ValueError(
                f"line count ({n_lines}) must be a multiple of "
                f"associativity ({self.associativity})"
            )
        if not (0.0 < self.split_fraction <= 1.0):
            raise ValueError("split_fraction must be in (0, 1]")

    @property
    def n_lines(self) -> int:
        """Total number of cache lines."""
        return self.size_bytes // self.line_bytes

    @property
    def n_sets(self) -> int:
        """Number of cache sets ``S = lines / associativity``."""
        return self.n_lines // self.associativity


#: MIPS R4400 primary data cache: 16 KB, 32 B lines, direct-mapped; split
#: cache seeing ~half of the reference stream.
R4400_L1D = CacheLevelConfig(
    size_bytes=16 * 1024,
    line_bytes=32,
    associativity=1,
    split_fraction=0.5,
    name="R4400 L1 D-cache",
)

#: MIPS R4400 primary instruction cache (same geometry as the D-cache).
R4400_L1I = CacheLevelConfig(
    size_bytes=16 * 1024,
    line_bytes=32,
    associativity=1,
    split_fraction=0.5,
    name="R4400 L1 I-cache",
)

#: SGI Challenge XL secondary cache: 1 MB unified, direct-mapped, 128 B
#: lines.
CHALLENGE_L2 = CacheLevelConfig(
    size_bytes=1024 * 1024,
    line_bytes=128,
    associativity=1,
    split_fraction=1.0,
    name="Challenge L2 (unified)",
)


@dataclass(frozen=True)
class CacheHierarchy:
    """An ordered tuple of cache levels plus the displacing workload model.

    ``levels[0]`` is the level closest to the processor.  The paper's
    platform has two levels; the class supports any depth so ablations can
    model single-level or three-level hierarchies.

    Parameters
    ----------
    levels:
        Cache levels, closest first.
    footprint_fn:
        Footprint function of the *displacing* (intervening) workload;
        defaults to the MVS constants used in the paper.
    clock_hz:
        Processor clock frequency (100 MHz on the paper's platform).
    cycles_per_reference:
        Average clock cycles per memory reference (``m = 5`` in the paper).
    """

    levels: Tuple[CacheLevelConfig, ...] = (R4400_L1D, CHALLENGE_L2)
    footprint_fn: FootprintFunction = field(default=MVS_WORKLOAD)
    clock_hz: float = 100e6
    cycles_per_reference: float = 5.0

    def __post_init__(self) -> None:
        if not self.levels:
            raise ValueError("hierarchy needs at least one cache level")
        if self.clock_hz <= 0 or self.cycles_per_reference <= 0:
            raise ValueError("clock_hz and cycles_per_reference must be positive")

    @property
    def n_levels(self) -> int:
        return len(self.levels)

    @property
    def references_per_second(self) -> float:
        """Aggregate reference rate: ``clock / m``  (20 M/s in the paper)."""
        return self.clock_hz / self.cycles_per_reference

    @property
    def references_per_us(self) -> float:
        """Reference rate in references per microsecond (the simulation's
        native time unit); 20 refs/us on the paper's platform."""
        return self.references_per_second * 1e-6

    # ------------------------------------------------------------------
    # Core model evaluation
    # ------------------------------------------------------------------
    def references_for_time(self, x_us: Union[float, np.ndarray],
                            intensity: float = 1.0) -> Union[float, np.ndarray]:
        """References issued by intervening execution of duration ``x`` µs.

        ``intensity`` is the paper's ``V`` knob: the effective memory
        reference intensity of the intervening (non-protocol) workload,
        with ``V = 0`` meaning the idle time displaces nothing (the "V=0
        curves" that bound the affinity benefit) and ``V = 1`` the full
        20 M refs/s rate.
        """
        if intensity < 0:
            raise ValueError("intensity must be non-negative")
        x = np.asarray(x_us, dtype=np.float64)
        if np.any(x < 0):
            raise ValueError("durations must be non-negative")
        out = x * self.references_per_us * intensity
        if np.ndim(x_us) == 0:
            return float(out)
        return out

    def flush_fraction_for_references(self, references: Union[float, np.ndarray],
                                     level: int) -> Union[float, np.ndarray]:
        """``F_level`` for a given total intervening reference count.

        The level's ``split_fraction`` is applied (a split L1 sees half of
        the stream), then the footprint function converts references to
        unique lines at the level's line size, and the set-occupancy model
        converts unique lines to a displaced fraction.
        """
        lv = self.levels[level]
        refs_at_level = np.asarray(references, dtype=np.float64) * lv.split_fraction
        u = self.footprint_fn.unique_lines(refs_at_level, lv.line_bytes)
        return flushed_fraction(u, lv.n_sets, lv.associativity)

    def flush_fractions(self, x_us: Union[float, np.ndarray],
                        intensity: float = 1.0) -> np.ndarray:
        """``(F1(x), F2(x), ...)`` for intervening execution of ``x`` µs.

        Returns an array of shape ``(n_levels,) + shape(x)``.  This is the
        quantity plotted in the paper's flush-curve figure: on the R4400
        the protocol footprint vanishes from L1 within a few hundred
        microseconds of intervening activity while surviving in the 1 MB L2
        for tens of milliseconds.
        """
        refs = self.references_for_time(x_us, intensity)
        return np.stack(
            [
                np.asarray(self.flush_fraction_for_references(refs, i), dtype=np.float64)
                for i in range(self.n_levels)
            ]
        )

    def time_to_flush(self, level: int, target_fraction: float = 0.5,
                      intensity: float = 1.0) -> float:
        """Intervening time (µs) after which ``F_level`` reaches a target.

        Solved by bisection on the monotone ``F(x)``.  Used in analyses of
        the "L2 flushes much more slowly than L1" observation.
        """
        if not (0.0 < target_fraction < 1.0):
            raise ValueError("target_fraction must be in (0, 1)")
        if intensity <= 0:
            raise ValueError("intensity must be positive to ever flush")
        lo, hi = 0.0, 1.0
        # Grow hi until the target is bracketed (cap at ~1e9 us = 1000 s).
        while (
            self.flush_fraction_for_references(
                self.references_for_time(hi, intensity), level
            )
            < target_fraction
        ):
            hi *= 2.0
            if hi > 1e9:
                raise RuntimeError("flush target not reachable within 1000 s")
        for _ in range(80):
            mid = 0.5 * (lo + hi)
            f = self.flush_fraction_for_references(
                self.references_for_time(mid, intensity), level
            )
            if f < target_fraction:
                lo = mid
            else:
                hi = mid
        return 0.5 * (lo + hi)


def sgi_challenge_hierarchy(
    footprint_fn: FootprintFunction = MVS_WORKLOAD,
) -> CacheHierarchy:
    """The paper's platform: R4400 split L1 over a 1 MB Challenge L2.

    The D-cache is used as the representative L1 level (the footprint's
    instruction half behaves symmetrically under the equal-split
    assumption).
    """
    return CacheHierarchy(
        levels=(R4400_L1D, CHALLENGE_L2),
        footprint_fn=footprint_fn,
        clock_hz=100e6,
        cycles_per_reference=5.0,
    )
