"""Calibration: turn conditioned measurements into model parameters.

The paper: "We show instead how to parameterize the analytic model with
experimental timing measurements."  This module closes that loop for the
reproduction:

- :func:`derive_costs` runs the cache-state experiment matrix and returns
  a :class:`~repro.core.params.ProtocolCosts` whose bounds are the
  *measured* (simulated-platform) times;
- :func:`derive_composition` turns the component-isolation runs into
  :class:`~repro.core.params.FootprintComposition` weights;
- :func:`scale_to_target` rescales a measured cost set so its ``t_cold``
  matches a published target (the paper's 284.3 µs) while preserving the
  measured *ratios* — the standard way to anchor a simulated platform to
  one published absolute number.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Tuple

from ..core.params import PAPER_COSTS, FootprintComposition, ProtocolCosts
from .cachestate import CacheStateExperiment, FootprintLayout

__all__ = [
    "derive_costs",
    "derive_composition",
    "scale_to_target",
    "calibrated_paper_costs",
]


def derive_costs(
    experiment: CacheStateExperiment = None,
    template: ProtocolCosts = PAPER_COSTS,
) -> ProtocolCosts:
    """Measured execution-time bounds from the simulated platform.

    Overhead fields (locking, dispatch, checksum rate) are carried over
    from ``template`` — they come from different measurements in the paper
    (lock micro-benchmarks, the quoted 32 B/µs checksum rate) and are not
    produced by the cache-state matrix.
    """
    if experiment is None:
        experiment = CacheStateExperiment()
    times = experiment.measure_all()
    return replace(
        template,
        t_warm_us=times["warm"].time_us,
        t_l2_us=times["l2_warm"].time_us,
        t_cold_us=times["cold"].time_us,
    )


def derive_composition(experiment: CacheStateExperiment = None) -> FootprintComposition:
    """Component weights from the isolation runs.

    Each component's weight is its isolated cold-start overhead divided by
    the sum over components (the shared-writable fraction is not derivable
    from single-processor measurements and keeps its default).
    """
    if experiment is None:
        experiment = CacheStateExperiment()
    breakdown = experiment.component_breakdown()
    total = sum(breakdown.values())
    if total <= 0:
        raise RuntimeError("component isolation produced no overhead; "
                           "footprint layout too small for the caches?")
    w = {k: v / total for k, v in breakdown.items()}
    # Normalize exactly (floating error) by assigning the residual to the
    # largest component.
    residual = 1.0 - sum(w.values())
    largest = max(w, key=w.get)
    w[largest] += residual
    return FootprintComposition(
        code_global=w["code_global"],
        stream_state=w["stream_state"],
        thread_stack=w["thread_stack"],
    )


def scale_to_target(measured: ProtocolCosts,
                    t_cold_target_us: float = 284.3) -> ProtocolCosts:
    """Rescale measured bounds so ``t_cold`` hits a published target.

    All three bounds are multiplied by the same factor, preserving the
    measured warm/l2/cold ratios (the shape the simulated platform
    determines) while anchoring the absolute scale to the one number the
    paper quotes.
    """
    if t_cold_target_us <= 0:
        raise ValueError("t_cold_target_us must be positive")
    factor = t_cold_target_us / measured.t_cold_us
    return replace(
        measured,
        t_warm_us=measured.t_warm_us * factor,
        t_l2_us=measured.t_l2_us * factor,
        t_cold_us=t_cold_target_us,
    )


def calibrated_paper_costs(
    layout: FootprintLayout = FootprintLayout(),
) -> Tuple[ProtocolCosts, FootprintComposition]:
    """Full calibration pipeline anchored to the paper's t_cold.

    Returns ``(costs, composition)`` ready to drop into a
    :class:`repro.sim.SystemConfig` — the measured alternative to the
    :data:`~repro.core.params.PAPER_COSTS` preset.
    """
    experiment = CacheStateExperiment(layout)
    costs = scale_to_target(derive_costs(experiment))
    composition = derive_composition(experiment)
    return costs, composition
