"""Measurement harness: the paper's Section-4 experiment design.

Conditioned cache-state measurements on the simulated platform
(:mod:`~repro.measurement.cachestate`), calibration of the analytic model
from those measurements (:mod:`~repro.measurement.calibrate`), and
wall-clock timing of the Python fast path itself
(:mod:`~repro.measurement.timing`).
"""

from .cachestate import (
    CacheStateExperiment,
    FootprintLayout,
    MeasuredTime,
    TwoLevelTimedCache,
)
from .calibrate import (
    calibrated_paper_costs,
    derive_composition,
    derive_costs,
    scale_to_target,
)
from .model_validation import (
    ModelValidationPoint,
    ModelValidationResult,
    validate_exec_model,
)
from .timing import TimingResult, time_callable, time_fast_path

__all__ = [
    "CacheStateExperiment",
    "FootprintLayout",
    "MeasuredTime",
    "ModelValidationPoint",
    "ModelValidationResult",
    "TimingResult",
    "TwoLevelTimedCache",
    "calibrated_paper_costs",
    "derive_composition",
    "derive_costs",
    "scale_to_target",
    "time_callable",
    "time_fast_path",
    "validate_exec_model",
]
