"""Execution-time model validation (the paper's model-vs-measurement figs).

The paper validates its analytic packet execution-time model against
implementation measurements before trusting it inside the simulation.
This module reproduces that step on the substituted platform:

- **measured**: warm the simulated two-level cache with the protocol
  footprint, run a *displacing* reference stream of ``R`` references
  through it (the non-protocol workload's footprint statistics), then
  time a packet execution exactly (per-reference, per-miss accounting);
- **analytic**: the reload-transient interpolation
  ``t(R) = t_warm + F1(R)*(t_l2-t_warm) + F2(R)*(t_cold-t_l2)`` with the
  footprint function *fitted to the same displacing stream family*.

Agreement between the two curves justifies using the cheap analytic form
inside the discrete-event simulation — the paper's methodological core.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from ..cache.flush import flushed_fraction
from ..cache.validation import fit_footprint_constants, measure_footprint_samples
from ..cache.traces import zipf_trace
from .cachestate import CacheStateExperiment, FootprintLayout, TwoLevelTimedCache

__all__ = ["ModelValidationPoint", "ModelValidationResult", "validate_exec_model"]


@dataclass(frozen=True)
class ModelValidationPoint:
    """One displacement level: measured vs analytic execution time."""

    intervening_refs: int
    measured_us: float
    analytic_us: float

    @property
    def relative_error(self) -> float:
        if self.measured_us == 0:
            return float("inf")
        return abs(self.analytic_us - self.measured_us) / self.measured_us


@dataclass(frozen=True)
class ModelValidationResult:
    """The full validation curve."""

    points: Tuple[ModelValidationPoint, ...]
    t_warm_us: float
    t_l2_us: float
    t_cold_us: float

    @property
    def max_relative_error(self) -> float:
        return max(p.relative_error for p in self.points) if self.points else 0.0

    @property
    def mean_relative_error(self) -> float:
        if not self.points:
            return 0.0
        return sum(p.relative_error for p in self.points) / len(self.points)


def validate_exec_model(
    layout: FootprintLayout = FootprintLayout(),
    displacing_working_set: int = 4 << 20,
    intervening_refs: Sequence[int] = (0, 500, 2_000, 8_000, 30_000,
                                       120_000, 500_000),
    seed: int = 1,
    zipf_skew: float = 1.3,
) -> ModelValidationResult:
    """Run the model-vs-measurement validation curve.

    For each displacement level the *measured* time comes from the exact
    trace-driven platform; the *analytic* time interpolates the measured
    warm/L2/cold bounds by flush fractions computed with a footprint
    function fitted to the displacing stream family — no information from
    the per-level miss counts leaks into the analytic curve.

    With the default parameters the curves agree within ~2 % everywhere.
    Caveat: ``displacing_working_set`` must exceed the L2 capacity (the
    default 4 MB > 1 MB); a displacing region smaller than the cache maps
    onto a contiguous *subset* of the sets, violating the analytic model's
    uniform-set-mapping assumption (the same assumption [24, 25] make) and
    producing systematic under-prediction of F2.
    """
    # repro-lint: ignore[RPR001] host harness, seeded from the explicit seed arg
    rng = np.random.default_rng(seed)
    experiment = CacheStateExperiment(layout)
    bounds = experiment.measure_all()
    t_warm = bounds["warm"].time_us
    t_l2 = bounds["l2_warm"].time_us
    t_cold = bounds["cold"].time_us

    # Fit the displacing family's footprint function (as [22] did for the
    # MVS trace).  The displacing stream must not overlap the protocol
    # footprint's addresses.
    base_displacing = 1 << 26
    fit_trace = zipf_trace(
        max(max(intervening_refs), 10_000), displacing_working_set,
        rng=rng, skew=zipf_skew, base_address=base_displacing,
    )
    checkpoints = np.unique(
        np.logspace(2, np.log10(len(fit_trace)), 7).astype(int)
    )
    fitted = fit_footprint_constants(
        measure_footprint_samples(fit_trace, checkpoints, (32, 128))
    )

    packet_trace = layout.packet_trace()
    points = []
    for R in intervening_refs:
        # Measured: warm, displace with the R-prefix, time the packet.
        cache = TwoLevelTimedCache()
        cache.warm(packet_trace)
        if R > 0:
            displacing = zipf_trace(R, displacing_working_set, rng=rng,
                                    skew=zipf_skew,
                                    base_address=base_displacing)
            cache.run(displacing)  # displacement itself is not timed
        measured = cache.run(packet_trace).time_us

        # Analytic: interpolate the bounds with the fitted flush model.
        u1 = fitted.unique_lines(float(R), 32)
        u2 = fitted.unique_lines(float(R), 128)
        f1 = float(flushed_fraction(u1, 512, 1))    # 16KB/32B L1
        f2 = float(flushed_fraction(u2, 8192, 1))   # 1MB/128B L2
        analytic = t_warm + f1 * (t_l2 - t_warm) + f2 * (t_cold - t_l2)
        points.append(ModelValidationPoint(
            intervening_refs=int(R),
            measured_us=measured,
            analytic_us=analytic,
        ))
    return ModelValidationResult(
        points=tuple(points), t_warm_us=t_warm, t_l2_us=t_l2, t_cold_us=t_cold,
    )
