"""Conditioned cache-state experiments (the paper's Section 4).

The paper "conduct[s] a set of multiprocessor experiments designed to
measure packet execution times under specific conditions of cache state,
and parameterize[s] the analytic model with the experimentally-measured
values", and "illustrate[s] an experimental method for isolating the
individual components of affinity-based overhead".

We cannot run on a Challenge XL, so — per the substitution rule — the same
experimental *design* is executed against the trace-driven cache simulator:

1. define the protocol footprint (code+globals, per-stream state,
   per-thread stack regions, laid out in a synthetic address space);
2. synthesize the per-packet reference trace over that footprint;
3. condition the simulated two-level hierarchy (fully warm / L2-only warm /
   fully cold / single-component-cold) exactly as the paper's experiments
   conditioned the real caches (by touching or displacing regions between
   timed runs);
4. "time" the packet by charging base cycles per reference plus per-level
   miss penalties.

The resulting ``t_warm / t_l2 / t_cold`` bounds parameterize
:class:`repro.core.params.ProtocolCosts` (see
:mod:`repro.measurement.calibrate`), and the component-isolation runs
yield the footprint composition weights.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from ..cache.hierarchy import CHALLENGE_L2, R4400_L1D, CacheLevelConfig
from ..cache.simulator import CacheSimulator

__all__ = [
    "FootprintLayout",
    "MeasuredTime",
    "TwoLevelTimedCache",
    "CacheStateExperiment",
]

#: Conditions matching the paper's measurement matrix.
CONDITIONS = ("warm", "l2_warm", "cold")


@dataclass(frozen=True)
class FootprintLayout:
    """Synthetic address-space layout of the protocol footprint.

    Sizes are reconstruction knobs (the capture quotes only t_cold); the
    defaults were chosen so the derived execution-time bounds land near
    the preset :data:`repro.core.params.PAPER_COSTS` (see E01).

    ``references_per_packet`` is the number of memory references one
    packet's fast-path execution issues; at the platform's 5 cycles per
    reference and 100 MHz, 3000 references correspond to a 150 µs warm
    execution.
    """

    code_global_bytes: int = 6 * 1024
    stream_state_bytes: int = 3 * 1024
    thread_stack_bytes: int = 3 * 1024
    references_per_packet: int = 3000
    stride_bytes: int = 4

    def __post_init__(self) -> None:
        for name in ("code_global_bytes", "stream_state_bytes",
                     "thread_stack_bytes"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")
        if self.references_per_packet < 1:
            raise ValueError("references_per_packet must be >= 1")
        if self.stride_bytes < 1:
            raise ValueError("stride_bytes must be >= 1")

    @property
    def total_bytes(self) -> int:
        return (
            self.code_global_bytes
            + self.stream_state_bytes
            + self.thread_stack_bytes
        )

    def component_regions(self) -> Dict[str, Tuple[int, int]]:
        """``name -> (base_address, size)``; regions are page-aligned and
        separated so they never share cache lines."""
        gap = 8 * 1024  # separation so components map to disjoint lines
        regions = {}
        base = 0
        for name, size in (
            ("code_global", self.code_global_bytes),
            ("stream_state", self.stream_state_bytes),
            ("thread_stack", self.thread_stack_bytes),
        ):
            regions[name] = (base, size)
            base += size + gap
        return regions

    def packet_trace(self) -> np.ndarray:
        """The per-packet reference trace.

        Interleaves sweeps over the three regions proportionally to their
        sizes, repeating until ``references_per_packet`` references are
        issued — a deterministic trace (measurements must be repeatable)
        whose unique-line count equals the footprint, as in the paper's
        conditioned experiments.
        """
        addrs = []
        for base, size in self.component_regions().values():
            addrs.append(base + np.arange(0, size, self.stride_bytes, dtype=np.int64))
        sweep = np.concatenate(addrs)
        reps = int(np.ceil(self.references_per_packet / len(sweep)))
        trace = np.tile(sweep, reps)[: self.references_per_packet]
        return trace

    def region_trace(self, component: str) -> np.ndarray:
        """All addresses of one component (for conditioning)."""
        base, size = self.component_regions()[component]
        return base + np.arange(0, size, self.stride_bytes, dtype=np.int64)


@dataclass(frozen=True)
class MeasuredTime:
    """One timed run: reference/miss counts and the derived time."""

    condition: str
    references: int
    l1_misses: int
    l2_misses: int
    time_us: float


class TwoLevelTimedCache:
    """Two-level hierarchy with per-level miss accounting and timing.

    Charges ``base_cycles_per_reference`` for every reference (pipeline +
    L1 hit), ``l2_hit_cycles`` per L1 miss served by L2, and
    ``memory_cycles`` per L2 miss.  Penalty defaults are R4400/Challenge-
    scale reconstructions.
    """

    def __init__(
        self,
        l1: CacheLevelConfig = R4400_L1D,
        l2: CacheLevelConfig = CHALLENGE_L2,
        clock_hz: float = 100e6,
        base_cycles_per_reference: float = 5.0,
        l2_hit_cycles: float = 16.0,
        memory_cycles: float = 90.0,
    ) -> None:
        if clock_hz <= 0:
            raise ValueError("clock_hz must be positive")
        for name, v in (("base_cycles_per_reference", base_cycles_per_reference),
                        ("l2_hit_cycles", l2_hit_cycles),
                        ("memory_cycles", memory_cycles)):
            if v < 0:
                raise ValueError(f"{name} must be non-negative")
        self.l1 = CacheSimulator(l1)
        self.l2 = CacheSimulator(l2)
        self.clock_hz = clock_hz
        self.base_cycles_per_reference = base_cycles_per_reference
        self.l2_hit_cycles = l2_hit_cycles
        self.memory_cycles = memory_cycles

    def flush_l1(self) -> None:
        self.l1.flush()

    def flush_all(self) -> None:
        self.l1.flush()
        self.l2.flush()

    def warm(self, addresses: np.ndarray) -> None:
        """Install addresses in both levels without timing."""
        self.run(addresses)

    def run(self, addresses: np.ndarray, condition: str = "") -> MeasuredTime:
        """Run a trace, counting per-level misses and charging time."""
        l1 = self.l1
        l2 = self.l2
        l1_misses = 0
        l2_misses = 0
        n = 0
        for a in np.asarray(addresses, dtype=np.int64):
            ai = int(a)
            n += 1
            if not l1.access_line(ai >> l1._line_shift):
                l1_misses += 1
                if not l2.access_line(ai >> l2._line_shift):
                    l2_misses += 1
        cycles = (
            n * self.base_cycles_per_reference
            + l1_misses * self.l2_hit_cycles
            + l2_misses * self.memory_cycles
        )
        return MeasuredTime(
            condition=condition,
            references=n,
            l1_misses=l1_misses,
            l2_misses=l2_misses,
            time_us=cycles / self.clock_hz * 1e6,
        )


class CacheStateExperiment:
    """The Section-4 measurement matrix against the simulated platform."""

    def __init__(self, layout: FootprintLayout = FootprintLayout(),
                 **timed_cache_kwargs) -> None:
        self.layout = layout
        self._timed_cache_kwargs = timed_cache_kwargs

    def _fresh(self) -> TwoLevelTimedCache:
        return TwoLevelTimedCache(**self._timed_cache_kwargs)

    def measure(self, condition: str) -> MeasuredTime:
        """Time one packet under a conditioned initial cache state.

        - ``warm``: the footprint was just executed on this processor;
        - ``l2_warm``: intervening activity displaced L1 but not L2
          (conditioned by flushing L1 only);
        - ``cold``: first execution on this processor (both levels empty).
        """
        if condition not in CONDITIONS:
            raise ValueError(f"condition must be one of {CONDITIONS}")
        cache = self._fresh()
        trace = self.layout.packet_trace()
        if condition in ("warm", "l2_warm"):
            cache.warm(trace)
            if condition == "l2_warm":
                cache.flush_l1()
        return cache.run(trace, condition=condition)

    def measure_all(self) -> Dict[str, MeasuredTime]:
        """The full (warm, l2_warm, cold) matrix."""
        return {c: self.measure(c) for c in CONDITIONS}

    def component_breakdown(self) -> Dict[str, float]:
        """Isolate each component's affinity overhead (µs).

        For each footprint component, measure a run in which *only that
        component* is cold (its lines evicted from both levels; everything
        else warm) and subtract the fully-warm time — the paper's
        "experimental method for isolating the individual components of
        affinity-based overhead".  Returns the extra time attributable to
        each component alone.
        """
        trace = self.layout.packet_trace()
        warm_time = self.measure("warm").time_us
        out: Dict[str, float] = {}
        for name in self.layout.component_regions():
            cache = self._fresh()
            cache.warm(trace)
            # Evict exactly this component by flushing and re-warming the
            # other components (a fresh hierarchy warmed with a trace that
            # omits the component).
            others = np.concatenate([
                self.layout.region_trace(other)
                for other in self.layout.component_regions()
                if other != name
            ])
            cache.flush_all()
            cache.warm(others)
            t = cache.run(trace, condition=f"cold:{name}").time_us
            out[name] = t - warm_time
        return out
