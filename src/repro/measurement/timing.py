"""Wall-clock timing of the Python fast path (methodology demonstration).

The paper's measurements timed a real C x-kernel on real hardware.  Our
substitute platform is the trace-driven cache simulator
(:mod:`repro.measurement.cachestate`); this module additionally times the
*actual Python implementation* of the receive fast path, demonstrating the
measurement methodology end-to-end on the one real machine available.
These timings characterize the reproduction's own code (useful for the
pytest-benchmark suite); they do **not** parameterize the model — Python
per-packet costs have nothing to do with 1995 RISC hardware.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List

import numpy as np

from ..xkernel.driver import StreamEndpoint
from ..xkernel.stack import ReceiveFastPath

__all__ = ["TimingResult", "time_fast_path", "time_callable"]


@dataclass(frozen=True)
class TimingResult:
    """Per-iteration wall-clock statistics (µs)."""

    n_iterations: int
    mean_us: float
    p50_us: float
    p95_us: float
    min_us: float
    max_us: float

    @classmethod
    def from_samples(cls, samples_us: np.ndarray) -> "TimingResult":
        s = np.asarray(samples_us, dtype=np.float64)
        if len(s) == 0:
            raise ValueError("no samples")
        return cls(
            n_iterations=len(s),
            mean_us=float(s.mean()),
            p50_us=float(np.percentile(s, 50)),
            p95_us=float(np.percentile(s, 95)),
            min_us=float(s.min()),
            max_us=float(s.max()),
        )


def time_callable(fn, n_iterations: int = 1000, warmup: int = 100) -> TimingResult:
    """Time ``fn()`` per call with warm-up discarded."""
    if n_iterations < 1 or warmup < 0:
        raise ValueError("need n_iterations >= 1 and warmup >= 0")
    for _ in range(warmup):
        fn()
    samples = np.empty(n_iterations)
    for i in range(n_iterations):
        t0 = time.perf_counter_ns()
        fn()
        samples[i] = (time.perf_counter_ns() - t0) / 1000.0
    return TimingResult.from_samples(samples)


def time_fast_path(
    n_streams: int = 8,
    n_iterations: int = 1000,
    payload_bytes: int = 64,
    verify_udp_checksum: bool = False,
) -> TimingResult:
    """Per-packet wall-clock time of the Python UDP/IP/FDDI receive path.

    Pre-builds all frames so frame *generation* is excluded — only
    receive-side processing is inside the timed region, matching the
    paper's receive-side focus.
    """
    streams: List[StreamEndpoint] = [
        StreamEndpoint(f"10.1.0.{i+1}", 6000 + i, 7000 + i)
        for i in range(n_streams)
    ]
    fp = ReceiveFastPath.build(streams, verify_udp_checksum=verify_udp_checksum)
    frames = fp.driver.round_robin(n_iterations + 100, payload_bytes)
    idx = 0

    def one() -> None:
        nonlocal idx
        fp.graph.receive(frames[idx % len(frames)])
        idx += 1

    return time_callable(one, n_iterations=n_iterations, warmup=100)
