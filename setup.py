"""Legacy shim so editable installs work on offline hosts without the
``wheel`` package (``pip install -e . --no-use-pep517``); all metadata
lives in pyproject.toml."""

from setuptools import setup

setup()
