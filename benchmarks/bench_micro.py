"""Micro-benchmarks of the reproduction's hot paths.

These characterize the library itself (not the paper's platform): the
per-packet cost of the analytic model, the discrete-event core, the
trace-driven cache simulator, and the Python protocol fast path.  Useful
for catching performance regressions in the simulator — the experiment
sweeps execute millions of these operations.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cache.hierarchy import sgi_challenge_hierarchy
from repro.cache.simulator import CacheSimulator
from repro.cache.traces import zipf_trace
from repro.core.exec_model import ComponentState, ExecutionTimeModel
from repro.core.params import PAPER_COMPOSITION, PAPER_COSTS
from repro.sim.engine import Simulator
from repro.sim.system import run_simulation
from repro.workloads.traffic import TrafficSpec
from repro.xkernel.driver import StreamEndpoint
from repro.xkernel.stack import ReceiveFastPath


def test_exec_model_scalar_evaluation(benchmark):
    """Per-packet execution-time evaluation (the simulator's inner loop)."""
    model = ExecutionTimeModel(PAPER_COSTS, PAPER_COMPOSITION,
                               sgi_challenge_hierarchy())
    state = ComponentState(code_refs=5_000.0, stream_refs=20_000.0,
                           thread_refs=float("inf"))
    out = benchmark(lambda: model.execution_time_us(state, locking=True))
    assert PAPER_COSTS.t_warm_us < out < PAPER_COSTS.t_cold_us + 50.0


def test_exec_model_vectorized_curve(benchmark):
    """Vectorized t(x) evaluation over a 1000-point sweep."""
    model = ExecutionTimeModel(PAPER_COSTS, PAPER_COMPOSITION,
                               sgi_challenge_hierarchy())
    xs = np.logspace(0, 7, 1000)
    out = benchmark(lambda: model.execution_time_after_idle(xs))
    assert out.shape == (1000,)


def test_event_engine_throughput(benchmark):
    """Schedule + fire 10k chained events."""
    def run():
        sim = Simulator()
        remaining = [10_000]

        def tick():
            remaining[0] -= 1
            if remaining[0] > 0:
                sim.schedule(1.0, tick)

        sim.schedule(0.0, tick)
        sim.run_until(2e4)
        return sim.events_processed

    assert benchmark(run) == 10_000


def test_cache_simulator_trace(benchmark):
    """Exact LRU simulation of a 50k-reference Zipf trace."""
    from repro.cache.hierarchy import R4400_L1D
    trace = zipf_trace(50_000, 256 * 1024,
                       rng=np.random.default_rng(1), skew=1.3)

    def run():
        sim = CacheSimulator(R4400_L1D)
        return sim.access_trace(trace).misses

    assert benchmark(run) > 0


def test_xkernel_fast_path_packets_per_second(benchmark):
    """Python UDP/IP/FDDI receive processing, 64 B packets."""
    streams = [StreamEndpoint(f"10.2.0.{i+1}", 6000 + i, 7100 + i)
               for i in range(4)]
    fp = ReceiveFastPath.build(streams)
    frames = fp.driver.round_robin(512, payload_bytes=64)
    idx = [0]

    def one():
        fp.graph.receive(frames[idx[0] & 511])
        idx[0] += 1

    benchmark(one)


def test_simulation_packets_per_second(benchmark):
    """End-to-end DES throughput: one 100 ms simulated run."""
    cfg_kwargs = dict(
        traffic=TrafficSpec.homogeneous_poisson(8, 20_000.0),
        paradigm="locking", policy="mru",
        duration_us=100_000.0, warmup_us=10_000.0, seed=2,
    )
    from repro.sim.system import SystemConfig

    def run():
        return run_simulation(SystemConfig(**cfg_kwargs)).n_packets

    assert benchmark.pedantic(run, rounds=3, iterations=1) > 1000


def _recurring_states():
    """The handful of states the simulator's hot loop keeps revisiting."""
    inf = float("inf")
    return [
        ComponentState(code_refs=0.0, stream_refs=0.0, thread_refs=0.0),
        ComponentState(code_refs=inf, stream_refs=inf, thread_refs=inf),
        ComponentState(code_refs=0.0, stream_refs=inf, thread_refs=0.0),
        ComponentState(code_refs=5_000.0, stream_refs=20_000.0,
                       thread_refs=inf, shared_invalidated=True),
    ]


def test_component_penalty_memoized(benchmark):
    """Per-state penalty lookup with the memo table (the default)."""
    model = ExecutionTimeModel(PAPER_COSTS, PAPER_COMPOSITION,
                               sgi_challenge_hierarchy())
    states = _recurring_states() * 250

    def run():
        total = 0.0
        for s in states:
            total += model.component_penalty_us(s)
        return total

    assert benchmark(run) > 0


def test_component_penalty_unmemoized(benchmark):
    """Same lookup with ``memoize=False`` — the before/after comparison."""
    model = ExecutionTimeModel(PAPER_COSTS, PAPER_COMPOSITION,
                               sgi_challenge_hierarchy(), memoize=False)
    states = _recurring_states() * 250

    def run():
        total = 0.0
        for s in states:
            total += model.component_penalty_us(s)
        return total

    assert benchmark(run) > 0
