"""Benchmark e13: Burstiness robustness: Locking vs IPS.

Regenerates the paper artifact end to end (fast-mode grid) and prints the
rows/series; run with ``--benchmark-only -s`` to see the table.
"""


def test_e13_burstiness(experiment_bench):
    result = experiment_bench("e13")
    assert result.rows
