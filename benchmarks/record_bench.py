"""Record hot-path benchmark results into ``BENCH_hotpath.json``.

Writes the repo-root trajectory file that tracks simulator throughput
PR-over-PR::

    PYTHONPATH=src python benchmarks/record_bench.py

The file has four sections:

``baseline``
    The pre-overhaul measurement (commit ``af16703``, frozen — never
    rewritten by this script) that the hot-path PR's >=3x claim is
    measured against.
``current``
    Best-of-N measurement of the checked-out tree on this machine,
    refreshed on every invocation.
``workload``
    The exact configuration both sections were measured with.
``runner_overhead``
    Happy-path cost of the fault-tolerant sweep runner (timeouts,
    retries, checkpoint plumbing armed, no faults firing) vs a bare
    ``run_simulation`` loop over the same sweep — the hardening tax,
    budgeted at < 2% (``docs/ROBUSTNESS.md``).

Numbers are machine-relative: re-record on the machine whose numbers you
want to compare, and treat cross-machine deltas as noise.  CI only
enforces a conservative absolute floor (see ``bench_hotpath.py --check``).
"""

from __future__ import annotations

import json
import subprocess
import sys
from typing import Any, Dict

from bench_hotpath import BENCH_JSON, WORKLOAD, report
from bench_runner import measure_overhead

#: Frozen pre-overhaul reference (commit af16703, same machine/workload
#: as the initial "current" recording).  Kept in-code so a fresh
#: recording can never silently erase the comparison point.
BASELINE: Dict[str, Any] = {
    "commit": "af16703",
    "note": "pre hot-path overhaul (seed workload, best of 5)",
    "locking/mru": {
        "elapsed_s": 0.2731,
        "events_per_sec": 73_880.0,
        "us_per_packet": 27.06,
    },
    "ips/ips-mru": {
        "elapsed_s": 0.2487,
        "events_per_sec": 81_154.0,
        "us_per_packet": 24.64,
    },
}


def current_commit() -> str:
    try:
        return subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, check=True,
        ).stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        return "unknown"


def main(repeats: int = 5) -> int:
    rows = report(repeats=repeats)
    overhead = measure_overhead(repeats=7)
    payload: Dict[str, Any] = {
        "workload": WORKLOAD,
        "baseline": BASELINE,
        "current": {
            "commit": current_commit(),
            **{case: row for case, row in rows.items()},
        },
        "speedup_vs_baseline": {
            case: round(BASELINE[case]["elapsed_s"] / rows[case]["elapsed_s"], 3)
            for case in rows
            if case in BASELINE
        },
        "runner_overhead": overhead,
    }
    BENCH_JSON.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"[record_bench] wrote {BENCH_JSON}")
    for case, speedup in payload["speedup_vs_baseline"].items():
        print(f"[record_bench] {case}: {speedup}x vs baseline")
    print(f"[record_bench] runner overhead: {overhead['overhead_pct']}% "
          f"(raw {overhead['raw_s']}s vs hardened {overhead['runner_s']}s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
