"""Record benchmark results into ``BENCH_hotpath.json`` / ``BENCH_sweep.json``.

Writes the repo-root trajectory files that track simulator throughput
(``BENCH_hotpath.json``) and sweep-executor throughput
(``BENCH_sweep.json``) PR-over-PR::

    PYTHONPATH=src python benchmarks/record_bench.py

The file has five sections:

``baseline``
    The pre-overhaul measurement (commit ``af16703``, frozen — never
    rewritten by this script) that the hot-path PR's >=3x claim is
    measured against.
``baseline_pr4``
    The scalar hot-path overhaul's numbers (commit ``13cf1ab``, frozen)
    — the per-event-dispatch core at its fastest, i.e. the reference the
    batched engine's speedup is measured against.
``current``
    Best-of-N measurement of the checked-out tree on this machine,
    refreshed on every invocation.
``workloads``
    The exact configurations the cases were measured with.
``runner_overhead``
    Happy-path cost of the fault-tolerant sweep runner (timeouts,
    retries, checkpoint plumbing armed, no faults firing) vs a bare
    ``run_simulation`` loop over the same sweep — the hardening tax,
    budgeted at < 2% (``docs/ROBUSTNESS.md``).

``BENCH_sweep.json`` records the execution-backend comparison (serial vs
pool vs warm vs distributed on the E06-style replicated session, best of
5, cold cache) — the acceptance trajectory for the affinity-aware sweep
executor (``docs/PERFORMANCE.md``) and the distributed backend's
happy-path overhead vs the warm fleet (``docs/DISTRIBUTED.md``), gated
in CI by ``bench_runner.py --check``.

Numbers are machine-relative: re-record on the machine whose numbers you
want to compare, and treat cross-machine deltas as noise.  CI only
enforces a conservative absolute floor (see ``bench_hotpath.py --check``).
"""

from __future__ import annotations

import json
import subprocess
import sys
from typing import Any, Dict

from bench_hotpath import BENCH_JSON, WORKLOADS, report
from bench_runner import SWEEP_JSON, compare_backends, measure_overhead

#: Frozen pre-overhaul reference (commit af16703, same machine/workload
#: as the initial "current" recording).  Kept in-code so a fresh
#: recording can never silently erase the comparison point.
BASELINE: Dict[str, Any] = {
    "commit": "af16703",
    "note": "pre hot-path overhaul (seed workload, best of 5)",
    "locking/mru": {
        "elapsed_s": 0.2731,
        "events_per_sec": 73_880.0,
        "us_per_packet": 27.06,
    },
    "ips/ips-mru": {
        "elapsed_s": 0.2487,
        "events_per_sec": 81_154.0,
        "us_per_packet": 24.64,
    },
}

#: Frozen scalar hot-path reference (commit 13cf1ab: the per-event
#: dispatch core after the PR-4 overhaul, before the batched engine).
#: Same machine/workload as BASELINE.
BASELINE_PR4: Dict[str, Any] = {
    "commit": "13cf1ab",
    "note": "scalar per-event core after the hot-path overhaul (best of 5)",
    "locking/mru": {
        "elapsed_s": 0.0910,
        "events_per_sec": 221_703.0,
        "us_per_packet": 9.02,
    },
    "ips/ips-mru": {
        "elapsed_s": 0.0800,
        "events_per_sec": 252_366.0,
        "us_per_packet": 7.92,
    },
}


def current_commit() -> str:
    """Short hash of HEAD, with a ``-dirty`` suffix for uncommitted edits.

    Recordings are usually taken *before* the PR's final commit exists,
    so a bare ``rev-parse HEAD`` stamps the parent commit and silently
    misattributes the numbers (BENCH_hotpath.json once recorded the seed
    commit for a post-overhaul measurement).  The suffix makes a
    mid-work recording self-describing: ``<hash>-dirty`` means "HEAD
    plus the working tree this PR was about to commit".
    """
    try:
        head = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, check=True,
        ).stdout.strip()
        status = subprocess.run(
            ["git", "status", "--porcelain"],
            capture_output=True, text=True, check=True,
        ).stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        return "unknown"
    return f"{head}-dirty" if status else head


def main(repeats: int = 5) -> int:
    rows = report(repeats=repeats)
    overhead = measure_overhead(repeats=7)
    payload: Dict[str, Any] = {
        "workloads": WORKLOADS,
        "baseline": BASELINE,
        "baseline_pr4": BASELINE_PR4,
        "current": {
            "commit": current_commit(),
            **{case: row for case, row in rows.items()},
        },
        "speedup_vs_baseline": {
            case: round(BASELINE[case]["elapsed_s"] / rows[case]["elapsed_s"], 3)
            for case in rows
            if case in BASELINE
        },
        "speedup_vs_pr4": {
            case: round(
                BASELINE_PR4[case]["elapsed_s"] / rows[case]["elapsed_s"], 3
            )
            for case in rows
            if case in BASELINE_PR4
        },
        "runner_overhead": overhead,
    }
    BENCH_JSON.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"[record_bench] wrote {BENCH_JSON}")
    for case, speedup in payload["speedup_vs_pr4"].items():
        print(f"[record_bench] {case}: {speedup}x vs PR-4 scalar core")
    print(f"[record_bench] runner overhead: {overhead['overhead_pct']}% "
          f"(raw {overhead['raw_s']}s vs hardened {overhead['runner_s']}s)")

    sweep: Dict[str, Any] = {
        "commit": current_commit(),
        "note": ("execution-backend comparison: E06-style replicated "
                 "session, best of 5, cold cache"),
        **compare_backends(repeats=repeats),
    }
    SWEEP_JSON.write_text(json.dumps(sweep, indent=2, sort_keys=True) + "\n")
    print(f"[record_bench] wrote {SWEEP_JSON}")
    print(f"[record_bench] warm vs pool: {sweep['warm_vs_pool']}x "
          f"(target >= 3x), warm vs serial: {sweep['warm_vs_serial']}x")
    print(f"[record_bench] distributed overhead vs warm: "
          f"{sweep['distributed_overhead_vs_warm_pct']:+.1f}%")
    return 0


if __name__ == "__main__":
    sys.exit(main())
