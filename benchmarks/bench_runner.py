"""Benchmark of the parallel sweep runner (the acceptance gate for the
``repro.runner`` subsystem).

Times a rate-grid sweep shaped like E10's fast grid — independent
simulations at several arrival rates — serially (``jobs=0``) and fanned
out over 4 worker processes, and reports the speedup.  On a >= 4-core
machine the parallel sweep must be at least 2x faster; on smaller
machines (e.g. a 1-CPU CI container, where a process pool cannot beat
serial) the speedup is reported but not asserted.

Also exercises the warm-cache path: a second pass over the same grid must
execute zero simulations.

The second half benchmarks the *execution backends* against each other on
an E06-style 300-point grid of very short simulations — the regime where
per-task overhead (process spawn, config pickling, model rebuild, result
pickling) dominates and the warm backend's persistent workers, chunked
dispatch and columnar transport pay off.  The distributed backend rides
the same comparison so its happy-path tax over the warm fleet (framing,
leases, heartbeats, the commit gate; docs/DISTRIBUTED.md) is recorded,
not guessed.  ``record_bench.py`` records the result as
``BENCH_sweep.json``; ``--check`` is the CI perf-smoke gate for it
(per-backend conservative throughput floors, auto-skipping when the
recording is absent).

Runnable three ways::

    pytest benchmarks/bench_runner.py -s --benchmark-only
    PYTHONPATH=src python benchmarks/bench_runner.py [--sweep]
    PYTHONPATH=src python benchmarks/bench_runner.py --check   # CI gate
"""

from __future__ import annotations

import json
import os
import sys
import time
from pathlib import Path

from repro.runner import ResultCache, SweepRunner
from repro.sim.system import SystemConfig
from repro.workloads.traffic import TrafficSpec

REPO_ROOT = Path(__file__).resolve().parent.parent
SWEEP_JSON = REPO_ROOT / "BENCH_sweep.json"

#: E10's fast-mode rate grid (packets/s), one Locking/MRU run per point.
RATE_GRID = (2_000, 8_000, 16_000, 28_000, 38_000)

#: Assert the >=2x speedup only where the hardware can deliver it.
MIN_CORES_FOR_ASSERT = 4
REQUIRED_SPEEDUP = 2.0


def sweep_configs(duration_us: float = 400_000.0) -> list:
    """One independent simulation per rate point (E10 fast shape)."""
    return [
        SystemConfig(
            traffic=TrafficSpec.homogeneous_poisson(8, float(rate)),
            paradigm="locking", policy="mru",
            duration_us=duration_us, warmup_us=duration_us * 0.15,
            seed=1,
        )
        for rate in RATE_GRID
    ]


def time_sweep(jobs: int, configs, cache=None):
    """Run the sweep once; returns (elapsed_s, results)."""
    runner = SweepRunner(jobs=jobs, cache=cache)
    t0 = time.perf_counter()
    results = runner.run_many(configs)
    return time.perf_counter() - t0, results, runner.stats


def compare(duration_us: float = 400_000.0):
    """Serial vs jobs=4 vs warm cache; returns a report dict."""
    configs = sweep_configs(duration_us)
    t_serial, serial, _ = time_sweep(0, configs)
    t_par, par, _ = time_sweep(4, configs)
    assert par == serial, "parallel sweep diverged from serial reference"

    import tempfile
    with tempfile.TemporaryDirectory() as tmp:
        cache = ResultCache(tmp)
        time_sweep(0, configs, cache=cache)
        t_warm, warm, warm_stats = time_sweep(0, configs, cache=cache)
        assert warm == serial, "cached sweep diverged from serial reference"
        assert warm_stats.executed == 0, "warm cache re-executed simulations"

    return {
        "points": len(configs),
        "serial_s": t_serial,
        "parallel_s": t_par,
        "speedup": t_serial / t_par if t_par > 0 else float("inf"),
        "warm_cache_s": t_warm,
        "cpus": os.cpu_count() or 1,
    }


def measure_overhead(repeats: int = 5, duration_us: float = 200_000.0):
    """Happy-path cost of the hardened runner (docs/ROBUSTNESS.md).

    Times the same sweep two ways, best-of-``repeats``: a bare
    ``run_simulation`` loop, and a serial ``SweepRunner`` with the full
    fault-tolerance machinery armed (timeout, retries, key computation)
    but no faults firing.  The difference is the per-run hardening tax —
    budgeted at < 2% (``docs/PERFORMANCE.md``), since the dominant cost
    of every real sweep is the simulation itself.
    """
    import gc

    from repro.sim.system import run_simulation

    configs = sweep_configs(duration_us)

    def timed(fn):
        # Collect first and keep the collector off while timing: the
        # repeats allocate identically, so an automatic gen-2 pass
        # phase-locks into one section and best-of-N cannot filter it.
        gc.collect()
        gc.disable()
        try:
            t0 = time.perf_counter()
            out = fn()
            return time.perf_counter() - t0, out
        finally:
            gc.enable()

    raw_times = []
    runner_times = []
    for _ in range(repeats):
        elapsed, reference = timed(lambda: [run_simulation(c) for c in configs])
        raw_times.append(elapsed)

        hardened = SweepRunner(jobs=0, cache=None, timeout_s=300.0, retries=2)
        elapsed, results = timed(lambda: hardened.run_many(configs))
        runner_times.append(elapsed)
        assert results == reference, "hardened runner diverged from raw loop"
    # The overhead estimate uses the *median of paired differences*:
    # each repeat's raw and runner sweeps run back-to-back, so machine
    # drift cancels within a pair, and the median discards the odd
    # repeat that caught a scheduler hiccup (best-of-N cannot — a spike
    # on one side only inflates the difference).
    diffs = sorted(b - a for a, b in zip(raw_times, runner_times))
    median_diff_s = diffs[len(diffs) // 2]
    raw_s = min(raw_times)
    return {
        "raw_s": round(raw_s, 4),
        "runner_s": round(raw_s + median_diff_s, 4),
        "overhead_pct": round(median_diff_s / raw_s * 100.0, 2),
    }


# ----------------------------------------------------------------------
# Backend comparison: the BENCH_sweep.json trajectory
# ----------------------------------------------------------------------

#: E06-style 300-config session: the Fig. 6 fast grid (5 policies x 6
#: rates = 30 configs) replicated over 10 seeds, submitted one
#: ``run_many`` batch per replicate — exactly how the experiment harness
#: drives the runner (one batch per figure series / search round / seed
#: replicate), which is the calling pattern that motivates persistent
#: workers: the pool backend re-spawns and re-warms its fleet on *every*
#: batch, the warm backend only on the first.
SWEEP_POLICIES = ("fcfs", "mru", "stream-mru", "pools", "wired-streams")
SWEEP_RATES = (2_000, 8_000, 16_000, 24_000, 32_000, 38_000)
SWEEP_REPLICATES = 10

#: Horizon per point: short on purpose.  The batched core finishes one
#: of these simulations in ~1 ms, which is where sweep campaigns now
#: live (the motivation section of the backend PR) — runner overhead,
#: not simulation, is the contended resource being measured.
SWEEP_DURATION_US = 1_000.0

#: Fleet width for the parallel backends.  Sized for a sweep box, not
#: for this container: the pool backend re-pays the fleet spawn per
#: batch (cost linear in ``jobs``), the warm backend amortizes it across
#: the session — which is the difference being measured.
SWEEP_JOBS = 8

#: Conservative configs/s floors for ``--check``, sized for a slow shared
#: 1-CPU CI runner (>= 3x headroom vs the recorded numbers; see
#: BENCH_sweep.json for what the recording machine actually sustains).
MIN_CONFIGS_PER_SEC = {
    "serial": 60.0,
    "pool": 10.0,
    "warm": 50.0,
    "distributed": 10.0,
}

#: The headline acceptance ratio recorded by record_bench.py (warm must
#: beat pool by at least this much on the recording machine).  ``--check``
#: re-asserts it only in strict mode: a noisy shared runner deserves the
#: benefit of the doubt on ratios, the floors above always hold.
REQUIRED_WARM_VS_POOL = 3.0


def backend_sweep_batches(duration_us: float = SWEEP_DURATION_US) -> list:
    """The session's batches: one Fig. 6 fast grid per seed replicate."""
    batches = []
    for seed in range(1, SWEEP_REPLICATES + 1):
        batches.append([
            SystemConfig(
                traffic=TrafficSpec.homogeneous_poisson(8, float(rate)),
                paradigm="locking", policy=policy,
                duration_us=duration_us, warmup_us=duration_us * 0.125,
                seed=seed,
            )
            for rate in SWEEP_RATES
            for policy in SWEEP_POLICIES
        ])
    return batches


def _one_session(runner, batches):
    """One cold-cache session: the batch sequence start to finish."""
    t0 = time.perf_counter()
    out = []
    for batch in batches:
        out.extend(runner.run_many(batch))
    return time.perf_counter() - t0, out


def _same_results(a, b) -> bool:
    """Bit-identity check that treats NaN == NaN.

    The 1 ms horizon legitimately produces zero-measured-packet runs at
    the lightest rate, whose delay fields are NaN sentinels; dataclass
    ``==`` would report those as diverging even when the backends agree
    bit for bit, so compare the rendered values instead.
    """
    return len(a) == len(b) and repr(a) == repr(b)


def compare_backends(repeats: int = 5,
                     duration_us: float = SWEEP_DURATION_US):
    """serial vs pool vs warm vs distributed on the E06-style session.

    Each backend keeps **one runner for all its sessions**, so it is
    measured the way it runs in practice: the warm backend spawns
    workers once and carries models, MRU state and chunk-size estimates
    across batches, while the pool backend pays its per-batch spawn in
    every batch — that *is* its steady-state cost and the overhead this
    benchmark exists to expose.

    Sessions are **interleaved round-robin** (serial, pool, warm,
    serial, ...) rather than run as per-backend legs: on a shared box
    the machine drifts over the minutes the comparison takes (thermal
    throttling, competing load), and sequential legs would hand whole
    degraded phases to whichever backend ran last.  Interleaving spreads
    drift across all three, and best-of-``repeats`` then clips the slow
    rounds for each backend independently.
    """
    batches = backend_sweep_batches(duration_us)
    points = sum(len(b) for b in batches)
    order = ("serial", "pool", "warm", "distributed")
    runners = {
        backend: SweepRunner(jobs=0 if backend == "serial" else SWEEP_JOBS,
                             backend=backend)
        for backend in order
    }
    best = {backend: float("inf") for backend in order}
    reference = None
    try:
        for _ in range(repeats):
            for backend in order:
                elapsed, results = _one_session(runners[backend], batches)
                if reference is None:
                    reference = results
                else:
                    assert _same_results(results, reference), \
                        f"{backend} backend diverged from the serial reference"
                best[backend] = min(best[backend], elapsed)
        rows = {}
        for backend in order:
            stats = runners[backend].stats
            rows[backend] = {
                "backend": backend,
                "jobs": 0 if backend == "serial" else SWEEP_JOBS,
                "points": points,
                "batches": len(batches),
                "best_s": round(best[backend], 4),
                "configs_per_sec": round(points / best[backend], 2),
                "chunks": stats.chunks,
                "affinity_hits": stats.affinity_hits,
                "steals": stats.steals,
            }
            if backend == "distributed":
                rows[backend]["leases"] = stats.leases
                rows[backend]["lease_expiries"] = stats.lease_expiries
                rows[backend]["dup_results"] = stats.dup_results
    finally:
        for runner in runners.values():
            runner.close()
    for backend in order:
        row = rows[backend]
        extra = ""
        if backend == "warm":
            extra = (f"  ({row['chunks']} chunks, {row['affinity_hits']} "
                     f"affine, {row['steals']} stolen)")
        elif backend == "distributed":
            extra = (f"  ({row['leases']} leases, "
                     f"{row['lease_expiries']} expired, "
                     f"{row['dup_results']} dups)")
        print(f"[bench_runner] {backend}: {row['best_s']:.3f} s  "
              f"{row['configs_per_sec']:,.1f} configs/s" + extra)
    warm_vs_pool = rows["warm"]["configs_per_sec"] / rows["pool"]["configs_per_sec"]
    warm_vs_serial = (rows["warm"]["configs_per_sec"]
                      / rows["serial"]["configs_per_sec"])
    # The distributed backend's happy-path tax vs the warm fleet it
    # degrades to: how much the network seam (framing, leases,
    # heartbeats, the commit gate) costs when nothing goes wrong.
    dist_overhead_pct = (rows["warm"]["configs_per_sec"]
                         / rows["distributed"]["configs_per_sec"] - 1.0) * 100.0
    print(f"[bench_runner] warm vs pool: {warm_vs_pool:.2f}x, "
          f"warm vs serial: {warm_vs_serial:.2f}x on {os.cpu_count()} CPUs")
    print(f"[bench_runner] distributed happy-path overhead vs warm: "
          f"{dist_overhead_pct:+.1f}%")
    return {
        "points": points,
        "batches": len(batches),
        "grid": {
            "policies": list(SWEEP_POLICIES),
            "rates_pps": list(SWEEP_RATES),
            "replicates": SWEEP_REPLICATES,
            "duration_us": duration_us,
        },
        "jobs": SWEEP_JOBS,
        "cpus": os.cpu_count() or 1,
        "backends": rows,
        "warm_vs_pool": round(warm_vs_pool, 3),
        "warm_vs_serial": round(warm_vs_serial, 3),
        "distributed_overhead_vs_warm_pct": round(dist_overhead_pct, 1),
    }


def check(repeats: int = 3) -> int:
    """CI perf-smoke gate for the backend sweep; returns an exit code."""
    if not SWEEP_JSON.exists():
        print(f"[bench_runner] SKIP: {SWEEP_JSON.name} not recorded yet "
              "(run benchmarks/record_bench.py)")
        return 0
    recorded = json.loads(SWEEP_JSON.read_text())
    strict = os.environ.get("REPRO_BENCH_STRICT") == "1"
    report = compare_backends(repeats=repeats)
    failures = []
    for backend, floor in MIN_CONFIGS_PER_SEC.items():
        got = report["backends"][backend]["configs_per_sec"]
        if got < floor:
            failures.append(
                f"{backend}: {got:,.1f} configs/s below the conservative "
                f"floor {floor:,.1f}")
    if strict:
        if report["warm_vs_pool"] < REQUIRED_WARM_VS_POOL:
            failures.append(
                f"warm vs pool {report['warm_vs_pool']:.2f}x below the "
                f"required {REQUIRED_WARM_VS_POOL:.1f}x (recorded "
                f"{recorded.get('warm_vs_pool', '?')}x)")
    if failures:
        for f in failures:
            print(f"[bench_runner] FAIL: {f}")
        return 1
    print("[bench_runner] OK")
    return 0


def test_parallel_sweep_speedup(benchmark):
    """jobs=4 over E10's rate grid: >=2x on >=4 cores, identical always."""
    configs = sweep_configs()
    t_serial, serial, _ = time_sweep(0, configs)

    def parallel():
        elapsed, results, _ = time_sweep(4, configs)
        assert results == serial
        return elapsed

    t_par = benchmark.pedantic(parallel, rounds=1, iterations=1)
    speedup = t_serial / t_par if t_par > 0 else float("inf")
    print(f"\nserial {t_serial:.2f}s, jobs=4 {t_par:.2f}s, "
          f"speedup {speedup:.2f}x on {os.cpu_count()} CPUs")
    if (os.cpu_count() or 1) >= MIN_CORES_FOR_ASSERT:
        assert speedup >= REQUIRED_SPEEDUP


def test_warm_cache_executes_nothing(benchmark):
    """Second pass over a cached grid is pure lookup."""
    import tempfile

    configs = sweep_configs(duration_us=100_000.0)
    with tempfile.TemporaryDirectory() as tmp:
        cache = ResultCache(tmp)
        _, cold, _ = time_sweep(0, configs, cache=cache)

        def warm():
            elapsed, results, stats = time_sweep(0, configs, cache=cache)
            assert results == cold
            assert stats.executed == 0
            assert stats.cache_hits == len(configs)
            return elapsed

        t_warm = benchmark.pedantic(warm, rounds=1, iterations=1)
        print(f"\nwarm-cache sweep: {t_warm*1000:.1f} ms "
              f"for {len(configs)} points")


if __name__ == "__main__":
    if "--check" in sys.argv:
        sys.exit(check())
    if "--sweep" in sys.argv:
        sweep = compare_backends()
        ok = sweep["warm_vs_pool"] >= REQUIRED_WARM_VS_POOL
        print(f"[bench_runner] warm-vs-pool gate (>= "
              f"{REQUIRED_WARM_VS_POOL:.1f}x): {'PASS' if ok else 'FAIL'}")
        sys.exit(0 if ok else 1)
    report = compare()
    print(f"{report['points']}-point sweep on {report['cpus']} CPUs")
    print(f"  serial (jobs=0): {report['serial_s']:.2f}s")
    print(f"  jobs=4:          {report['parallel_s']:.2f}s "
          f"({report['speedup']:.2f}x)")
    print(f"  warm cache:      {report['warm_cache_s']*1000:.1f} ms")
    if report["cpus"] >= MIN_CORES_FOR_ASSERT:
        ok = report["speedup"] >= REQUIRED_SPEEDUP
        print(f"  speedup gate (>= {REQUIRED_SPEEDUP}x): "
              f"{'PASS' if ok else 'FAIL'}")
        raise SystemExit(0 if ok else 1)
    print(f"  speedup gate skipped (< {MIN_CORES_FOR_ASSERT} CPUs)")
