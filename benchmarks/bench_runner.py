"""Benchmark of the parallel sweep runner (the acceptance gate for the
``repro.runner`` subsystem).

Times a rate-grid sweep shaped like E10's fast grid — independent
simulations at several arrival rates — serially (``jobs=0``) and fanned
out over 4 worker processes, and reports the speedup.  On a >= 4-core
machine the parallel sweep must be at least 2x faster; on smaller
machines (e.g. a 1-CPU CI container, where a process pool cannot beat
serial) the speedup is reported but not asserted.

Also exercises the warm-cache path: a second pass over the same grid must
execute zero simulations.

Runnable two ways::

    pytest benchmarks/bench_runner.py -s --benchmark-only
    PYTHONPATH=src python benchmarks/bench_runner.py
"""

from __future__ import annotations

import os
import time

from repro.runner import ResultCache, SweepRunner
from repro.sim.system import SystemConfig
from repro.workloads.traffic import TrafficSpec

#: E10's fast-mode rate grid (packets/s), one Locking/MRU run per point.
RATE_GRID = (2_000, 8_000, 16_000, 28_000, 38_000)

#: Assert the >=2x speedup only where the hardware can deliver it.
MIN_CORES_FOR_ASSERT = 4
REQUIRED_SPEEDUP = 2.0


def sweep_configs(duration_us: float = 400_000.0) -> list:
    """One independent simulation per rate point (E10 fast shape)."""
    return [
        SystemConfig(
            traffic=TrafficSpec.homogeneous_poisson(8, float(rate)),
            paradigm="locking", policy="mru",
            duration_us=duration_us, warmup_us=duration_us * 0.15,
            seed=1,
        )
        for rate in RATE_GRID
    ]


def time_sweep(jobs: int, configs, cache=None):
    """Run the sweep once; returns (elapsed_s, results)."""
    runner = SweepRunner(jobs=jobs, cache=cache)
    t0 = time.perf_counter()
    results = runner.run_many(configs)
    return time.perf_counter() - t0, results, runner.stats


def compare(duration_us: float = 400_000.0):
    """Serial vs jobs=4 vs warm cache; returns a report dict."""
    configs = sweep_configs(duration_us)
    t_serial, serial, _ = time_sweep(0, configs)
    t_par, par, _ = time_sweep(4, configs)
    assert par == serial, "parallel sweep diverged from serial reference"

    import tempfile
    with tempfile.TemporaryDirectory() as tmp:
        cache = ResultCache(tmp)
        time_sweep(0, configs, cache=cache)
        t_warm, warm, warm_stats = time_sweep(0, configs, cache=cache)
        assert warm == serial, "cached sweep diverged from serial reference"
        assert warm_stats.executed == 0, "warm cache re-executed simulations"

    return {
        "points": len(configs),
        "serial_s": t_serial,
        "parallel_s": t_par,
        "speedup": t_serial / t_par if t_par > 0 else float("inf"),
        "warm_cache_s": t_warm,
        "cpus": os.cpu_count() or 1,
    }


def measure_overhead(repeats: int = 5, duration_us: float = 200_000.0):
    """Happy-path cost of the hardened runner (docs/ROBUSTNESS.md).

    Times the same sweep two ways, best-of-``repeats``: a bare
    ``run_simulation`` loop, and a serial ``SweepRunner`` with the full
    fault-tolerance machinery armed (timeout, retries, key computation)
    but no faults firing.  The difference is the per-run hardening tax —
    budgeted at < 2% (``docs/PERFORMANCE.md``), since the dominant cost
    of every real sweep is the simulation itself.
    """
    import gc

    from repro.sim.system import run_simulation

    configs = sweep_configs(duration_us)

    def timed(fn):
        # Collect first and keep the collector off while timing: the
        # repeats allocate identically, so an automatic gen-2 pass
        # phase-locks into one section and best-of-N cannot filter it.
        gc.collect()
        gc.disable()
        try:
            t0 = time.perf_counter()
            out = fn()
            return time.perf_counter() - t0, out
        finally:
            gc.enable()

    raw_times = []
    runner_times = []
    for _ in range(repeats):
        elapsed, reference = timed(lambda: [run_simulation(c) for c in configs])
        raw_times.append(elapsed)

        hardened = SweepRunner(jobs=0, cache=None, timeout_s=300.0, retries=2)
        elapsed, results = timed(lambda: hardened.run_many(configs))
        runner_times.append(elapsed)
        assert results == reference, "hardened runner diverged from raw loop"
    # The overhead estimate uses the *median of paired differences*:
    # each repeat's raw and runner sweeps run back-to-back, so machine
    # drift cancels within a pair, and the median discards the odd
    # repeat that caught a scheduler hiccup (best-of-N cannot — a spike
    # on one side only inflates the difference).
    diffs = sorted(b - a for a, b in zip(raw_times, runner_times))
    median_diff_s = diffs[len(diffs) // 2]
    raw_s = min(raw_times)
    return {
        "raw_s": round(raw_s, 4),
        "runner_s": round(raw_s + median_diff_s, 4),
        "overhead_pct": round(median_diff_s / raw_s * 100.0, 2),
    }


def test_parallel_sweep_speedup(benchmark):
    """jobs=4 over E10's rate grid: >=2x on >=4 cores, identical always."""
    configs = sweep_configs()
    t_serial, serial, _ = time_sweep(0, configs)

    def parallel():
        elapsed, results, _ = time_sweep(4, configs)
        assert results == serial
        return elapsed

    t_par = benchmark.pedantic(parallel, rounds=1, iterations=1)
    speedup = t_serial / t_par if t_par > 0 else float("inf")
    print(f"\nserial {t_serial:.2f}s, jobs=4 {t_par:.2f}s, "
          f"speedup {speedup:.2f}x on {os.cpu_count()} CPUs")
    if (os.cpu_count() or 1) >= MIN_CORES_FOR_ASSERT:
        assert speedup >= REQUIRED_SPEEDUP


def test_warm_cache_executes_nothing(benchmark):
    """Second pass over a cached grid is pure lookup."""
    import tempfile

    configs = sweep_configs(duration_us=100_000.0)
    with tempfile.TemporaryDirectory() as tmp:
        cache = ResultCache(tmp)
        _, cold, _ = time_sweep(0, configs, cache=cache)

        def warm():
            elapsed, results, stats = time_sweep(0, configs, cache=cache)
            assert results == cold
            assert stats.executed == 0
            assert stats.cache_hits == len(configs)
            return elapsed

        t_warm = benchmark.pedantic(warm, rounds=1, iterations=1)
        print(f"\nwarm-cache sweep: {t_warm*1000:.1f} ms "
              f"for {len(configs)} points")


if __name__ == "__main__":
    report = compare()
    print(f"{report['points']}-point sweep on {report['cpus']} CPUs")
    print(f"  serial (jobs=0): {report['serial_s']:.2f}s")
    print(f"  jobs=4:          {report['parallel_s']:.2f}s "
          f"({report['speedup']:.2f}x)")
    print(f"  warm cache:      {report['warm_cache_s']*1000:.1f} ms")
    if report["cpus"] >= MIN_CORES_FOR_ASSERT:
        ok = report["speedup"] >= REQUIRED_SPEEDUP
        print(f"  speedup gate (>= {REQUIRED_SPEEDUP}x): "
              f"{'PASS' if ok else 'FAIL'}")
        raise SystemExit(0 if ok else 1)
    print(f"  speedup gate skipped (< {MIN_CORES_FOR_ASSERT} CPUs)")
