"""Benchmark e10: Fig. 10: % reduction under Locking, V family.

Regenerates the paper artifact end to end (fast-mode grid) and prints the
rows/series; run with ``--benchmark-only -s`` to see the table.
"""


def test_e10_reduction_locking(experiment_bench):
    result = experiment_bench("e10")
    assert result.rows
