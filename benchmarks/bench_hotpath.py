"""Hot-path benchmark of the discrete-event core (both paradigms).

Measures three 500 ms-horizon single-run workloads and reports, per case:

- wall-clock time for the run,
- engine events per second (the headline throughput number),
- host µs per injected packet,
- the exec-model fast-path hit rate (acceptance gate: >= 0.90).

Cases:

``locking/mru`` and ``ips/ips-mru``
    The PR-4 gate workload — 8 homogeneous Poisson streams at 20k
    packets/s aggregate, seed 2 — kept verbatim so the events/s
    trajectory stays comparable PR over PR.
``locking/mru@det-saturated``
    8 phase-staggered deterministic streams at 200k packets/s aggregate:
    a deep-overload dispatch stress in which every event is either a
    queue insertion or a completion-dispatch, with zero penalty-cache
    probes (all penalties resolve analytically).  This is the batched
    engine's headline case: the fused array core sustains >= 1M events/s
    on it in pure Python (see ``BENCH_hotpath.json``).

Runnable three ways::

    PYTHONPATH=src python benchmarks/bench_hotpath.py            # report
    PYTHONPATH=src python benchmarks/bench_hotpath.py --check    # CI gate
    pytest benchmarks/bench_hotpath.py -s --benchmark-only       # pytest-benchmark

``--check`` is the CI perf-smoke gate: it loads the recorded numbers from
``BENCH_hotpath.json`` at the repo root (written by ``record_bench.py``)
and fails when the measured events/s drop below a conservative absolute
floor or regress more than :data:`MAX_REGRESSION` against the recorded
run.  When the recording is missing (a branch stacked before the file
lands) the check auto-skips, mirroring the runner benchmark's
slow-machine policy; set ``REPRO_BENCH_STRICT=1`` to also enforce the
relative gate on hardware comparable to the recording.
"""

from __future__ import annotations

import json
import os
import sys
import time
from pathlib import Path
from typing import Dict

from repro.sim import batch
from repro.sim.system import NetworkProcessingSystem, SystemConfig
from repro.workloads.arrivals import DeterministicSpec
from repro.workloads.traffic import FixedSize, TrafficSpec

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_JSON = REPO_ROOT / "BENCH_hotpath.json"

#: The gated workloads (keep in sync with BENCH_hotpath.json's
#: "workloads").  ``poisson-20k`` is the PR-4 gate workload, unchanged;
#: ``det-saturated-200k`` is the batched engine's >= 1M events/s case.
WORKLOADS = {
    "poisson-20k": {
        "kind": "poisson",
        "n_streams": 8,
        "total_rate_pps": 20_000.0,
        "duration_us": 500_000.0,
        "warmup_us": 50_000.0,
        "seed": 2,
    },
    "det-saturated-200k": {
        "kind": "deterministic",
        "n_streams": 8,
        "total_rate_pps": 200_000.0,
        "phase_step_us": 7.0,
        "duration_us": 500_000.0,
        "warmup_us": 250_000.0,
        "seed": 2,
    },
}

#: Benchmarked cases: (case key, paradigm, policy, workload name).  The
#: two Poisson keys predate the workload suffix and stay bare so the
#: recorded trajectory (and the frozen baselines in record_bench.py)
#: remain directly comparable.
CASES = (
    ("locking/mru", "locking", "mru", "poisson-20k"),
    ("ips/ips-mru", "ips", "ips-mru", "poisson-20k"),
    ("locking/mru@det-saturated", "locking", "mru", "det-saturated-200k"),
)

#: Absolute events/s floors for ``--check``: conservative enough for a
#: slow shared CI runner (observed machine-period swings reach ~40%).
#: The pre-overhaul code sustained ~74k ev/s on the Poisson workload;
#: the fused batched core does ~450-700k there and ~1M+ on the
#: saturated case.
MIN_EVENTS_PER_SEC = {
    "poisson-20k": 100_000.0,
    "det-saturated-200k": 300_000.0,
}

#: Maximum tolerated events/s regression vs the recorded run when the
#: strict (same-machine) gate is enabled.
MAX_REGRESSION = 0.30

#: Exec-model fast-path hit-rate acceptance gate (always enforced).
MIN_HIT_RATE = 0.90


def build_config(paradigm: str, policy: str,
                 workload: str = "poisson-20k") -> SystemConfig:
    spec = WORKLOADS[workload]
    if spec["kind"] == "poisson":
        traffic = TrafficSpec.homogeneous_poisson(
            spec["n_streams"], spec["total_rate_pps"]
        )
    else:
        per_stream = spec["total_rate_pps"] / spec["n_streams"]
        traffic = TrafficSpec(
            stream_specs=tuple(
                DeterministicSpec(per_stream, phase_us=spec["phase_step_us"] * i)
                for i in range(spec["n_streams"])
            ),
            size_model=FixedSize(1024),
        )
    return SystemConfig(
        paradigm=paradigm,
        policy=policy,
        traffic=traffic,
        duration_us=spec["duration_us"],
        warmup_us=spec["warmup_us"],
        seed=spec["seed"],
    )


def run_once(paradigm: str, policy: str,
             workload: str = "poisson-20k") -> Dict[str, float]:
    """One timed run; returns the per-run measurement row."""
    system = NetworkProcessingSystem(build_config(paradigm, policy, workload))
    engine = "scalar"
    if batch.engine_mode() != "scalar" and batch.unsupported_reason(system) is None:
        engine = "batched"
    t0 = time.perf_counter()
    summary = system.run()
    elapsed_s = time.perf_counter() - t0
    events = system.sim.events_processed
    injected = system.metrics.arrivals
    stats = system.model.stats()
    return {
        "engine": engine,
        "elapsed_s": elapsed_s,
        "events": float(events),
        "events_per_sec": events / elapsed_s,
        "us_per_packet": elapsed_s * 1e6 / injected,
        "packets_injected": float(injected),
        "n_packets_measured": float(summary.n_packets),
        "mean_delay_us": summary.mean_delay_us,
        "hit_rate": stats["hit_rate"],
        "component_reuse_rate": stats["component_reuse_rate"],
    }


def measure(paradigm: str, policy: str, workload: str = "poisson-20k",
            repeats: int = 5) -> Dict[str, float]:
    """Best-of-``repeats`` measurement (minimum wall time wins: the run is
    deterministic, so the fastest repetition is the least-noisy one)."""
    best = min((run_once(paradigm, policy, workload) for _ in range(repeats)),
               key=lambda row: row["elapsed_s"])
    return best


def report(repeats: int = 5) -> Dict[str, Dict[str, float]]:
    """Measure every case and print the table; returns the rows."""
    rows: Dict[str, Dict[str, float]] = {}
    for case, paradigm, policy, workload in CASES:
        row = measure(paradigm, policy, workload, repeats=repeats)
        rows[case] = row
        print(
            f"[bench_hotpath] {case}: "
            f"{row['elapsed_s']:.4f} s  "
            f"{row['events_per_sec']:,.0f} events/s  "
            f"{row['us_per_packet']:.2f} us/packet  "
            f"hit_rate={row['hit_rate']:.4f}  "
            f"engine={row['engine']}"
        )
    return rows


def check(repeats: int = 5) -> int:
    """CI perf-smoke gate; returns a process exit code."""
    if not BENCH_JSON.exists():
        print(f"[bench_hotpath] SKIP: {BENCH_JSON.name} not recorded yet "
              "(run benchmarks/record_bench.py)")
        return 0
    recorded = json.loads(BENCH_JSON.read_text())["current"]
    strict = os.environ.get("REPRO_BENCH_STRICT") == "1"
    rows = report(repeats=repeats)
    workload_of = {case: workload for case, _, _, workload in CASES}
    failures = []
    for case, row in rows.items():
        if row["hit_rate"] < MIN_HIT_RATE:
            failures.append(
                f"{case}: fast-path hit rate {row['hit_rate']:.3f} "
                f"< {MIN_HIT_RATE}"
            )
        floor = MIN_EVENTS_PER_SEC[workload_of[case]]
        if row["events_per_sec"] < floor:
            failures.append(
                f"{case}: {row['events_per_sec']:,.0f} events/s below the "
                f"conservative floor {floor:,.0f}"
            )
        ref = recorded.get(case)
        if strict and ref is not None:
            allowed = (1.0 - MAX_REGRESSION) * ref["events_per_sec"]
            if row["events_per_sec"] < allowed:
                failures.append(
                    f"{case}: {row['events_per_sec']:,.0f} events/s is a "
                    f">{MAX_REGRESSION:.0%} regression vs the recorded "
                    f"{ref['events_per_sec']:,.0f}"
                )
    if failures:
        for f in failures:
            print(f"[bench_hotpath] FAIL: {f}")
        return 1
    print("[bench_hotpath] OK")
    return 0


# ----------------------------------------------------------------------
# pytest-benchmark entry points (skipped in plain test runs; see
# benchmarks/conftest.py)
# ----------------------------------------------------------------------
def test_hotpath_locking(benchmark):
    row = benchmark.pedantic(run_once, args=CASES[0][1:], rounds=3, iterations=1)
    assert row["hit_rate"] >= MIN_HIT_RATE


def test_hotpath_ips(benchmark):
    row = benchmark.pedantic(run_once, args=CASES[1][1:], rounds=3, iterations=1)
    assert row["hit_rate"] >= MIN_HIT_RATE


def test_hotpath_saturated(benchmark):
    row = benchmark.pedantic(run_once, args=CASES[2][1:], rounds=3, iterations=1)
    assert row["hit_rate"] >= MIN_HIT_RATE


if __name__ == "__main__":
    if "--check" in sys.argv:
        sys.exit(check())
    report()
