"""Benchmark-suite configuration.

Every paper artifact (table/figure) has one benchmark that regenerates it
via its experiment module and prints the same rows/series the paper
reports (run with ``pytest benchmarks/ --benchmark-only -s`` to see them).
Experiment benchmarks execute a single round — they are end-to-end
regenerations, not micro-benchmarks — while the micro-benchmarks in
``bench_micro.py`` use pytest-benchmark's usual calibration.
"""

from __future__ import annotations

import pytest


def run_and_print(benchmark, experiment_id: str, **kwargs):
    """Benchmark one experiment (single round) and print its artifact."""
    from repro.experiments.base import run_experiment

    result = benchmark.pedantic(
        run_experiment,
        args=(experiment_id,),
        kwargs={"fast": True, **kwargs},
        rounds=1,
        iterations=1,
    )
    print()
    print(result)
    return result


@pytest.fixture
def experiment_bench(benchmark):
    """Fixture wrapping :func:`run_and_print`."""
    def _run(experiment_id: str, **kwargs):
        return run_and_print(benchmark, experiment_id, **kwargs)
    return _run
