"""Benchmark-suite configuration.

Every paper artifact (table/figure) has one benchmark that regenerates it
via its experiment module and prints the same rows/series the paper
reports (run with ``pytest benchmarks/ --benchmark-only -s`` to see them).
Experiment benchmarks execute a single round — they are end-to-end
regenerations, not micro-benchmarks — while the micro-benchmarks in
``bench_micro.py`` use pytest-benchmark's usual calibration.
"""

from __future__ import annotations

from pathlib import Path

import pytest

_BENCH_DIR = Path(__file__).resolve().parent


def _benchmarking_requested(config) -> bool:
    """True when pytest-benchmark flags show this is a benchmark run."""
    for opt in ("--benchmark-only", "--benchmark-enable"):
        try:
            if config.getoption(opt):
                return True
        except (ValueError, KeyError):  # pytest-benchmark not installed
            return False
    return False


def pytest_collection_modifyitems(config, items):
    """Mark everything under benchmarks/ as ``bench`` and keep it out of
    plain test runs: the tier-1 suite (``pytest -x -q``) must never pay
    for end-to-end artifact regenerations.  Benchmarks execute only when
    a pytest-benchmark flag (``--benchmark-only``/``--benchmark-enable``)
    asks for them.
    """
    skip = pytest.mark.skip(
        reason="benchmark: run with --benchmark-only (or --benchmark-enable)"
    )
    benchmarking = _benchmarking_requested(config)
    for item in items:
        # The hook sees the whole session's items; touch only ours.
        if _BENCH_DIR not in Path(str(item.path)).parents:
            continue
        item.add_marker(pytest.mark.bench)
        if not benchmarking:
            item.add_marker(skip)


def run_and_print(benchmark, experiment_id: str, **kwargs):
    """Benchmark one experiment (single round) and print its artifact."""
    from repro.experiments.base import run_experiment

    result = benchmark.pedantic(
        run_experiment,
        args=(experiment_id,),
        kwargs={"fast": True, **kwargs},
        rounds=1,
        iterations=1,
    )
    print()
    print(result)
    return result


@pytest.fixture
def experiment_bench(benchmark):
    """Fixture wrapping :func:`run_and_print`."""
    def _run(experiment_id: str, **kwargs):
        return run_and_print(benchmark, experiment_id, **kwargs)
    return _run
