"""Benchmark e03: F1(x)/F2(x) flush curves.

Regenerates the paper artifact end to end (fast-mode grid) and prints the
rows/series; run with ``--benchmark-only -s`` to see the table.
"""


def test_e03_flush_curves(experiment_bench):
    result = experiment_bench("e03")
    assert result.meta['l2_over_l1_ratio'] > 10
