"""Benchmark e11: Fig. 11: % reduction under IPS, V family.

Regenerates the paper artifact end to end (fast-mode grid) and prints the
rows/series; run with ``--benchmark-only -s`` to see the table.
"""


def test_e11_reduction_ips(experiment_bench):
    result = experiment_bench("e11")
    assert result.rows
