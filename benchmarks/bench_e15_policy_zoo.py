"""Benchmark e15: policy-zoo delay/capacity grids + reordering table.

Regenerates the extension artifact end to end (fast-mode grid) and prints
the rows/series; run with ``--benchmark-only -s`` to see the tables.
"""


def test_e15_policy_zoo(experiment_bench):
    result = experiment_bench("e15")
    assert result.rows
