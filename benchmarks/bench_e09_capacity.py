"""Benchmark e09: Maximum sustainable throughput by policy.

Regenerates the paper artifact end to end (fast-mode grid) and prints the
rows/series; run with ``--benchmark-only -s`` to see the table.
"""


def test_e09_capacity(experiment_bench):
    result = experiment_bench("e09")
    caps = result.meta['capacities']
    assert caps['ips-wired'] > caps['locking-fcfs(baseline)']
