"""Benchmark e07: Fig. 7: Locking delay vs rate, 64 streams.

Regenerates the paper artifact end to end (fast-mode grid) and prints the
rows/series; run with ``--benchmark-only -s`` to see the table.
"""


def test_e07_locking_many_streams(experiment_bench):
    result = experiment_bench("e07")
    assert result.rows
