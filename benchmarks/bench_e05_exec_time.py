"""Benchmark e05: t(x) reload-transient curve.

Regenerates the paper artifact end to end (fast-mode grid) and prints the
rows/series; run with ``--benchmark-only -s`` to see the table.
"""


def test_e05_exec_time(experiment_bench):
    result = experiment_bench("e05")
    assert result.rows
