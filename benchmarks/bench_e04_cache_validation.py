"""Benchmark e04: Analytic-vs-trace-driven flush validation.

Regenerates the paper artifact end to end (fast-mode grid) and prints the
rows/series; run with ``--benchmark-only -s`` to see the table.
"""


def test_e04_cache_validation(experiment_bench):
    result = experiment_bench("e04")
    assert result.meta['comparison'].mean_abs_error < 0.1
