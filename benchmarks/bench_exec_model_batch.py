"""Micro-benchmark: scalar vs vectorized execution-time model.

Times :meth:`ExecutionTimeModel.component_penalty_us` called per state
against :meth:`component_penalty_us_batch` /
:meth:`component_penalties_array` over the same states, for batch sizes
spanning the regimes the fused engine sees (a handful of dispatches up
to full-run blocks)::

    PYTHONPATH=src python benchmarks/bench_exec_model_batch.py

The state population mirrors simulator traffic: a mix of warm (0.0),
fully-cold (``COLD``) and finite displacement counts, with duplicates —
the scalar fast path's analytic/dedup/cache machinery and the array
path's unique-state factoring both get realistic hit ratios.  Results
are wall-clock medians-of-N; the equality check at the end asserts the
two paths agree bit for bit before any number is printed (a benchmark of
a wrong kernel is worse than no benchmark).
"""

from __future__ import annotations

import sys
import time
from typing import List

import numpy as np

from repro.cache.hierarchy import sgi_challenge_hierarchy
from repro.core.exec_model import COLD, ComponentState, ExecutionTimeModel
from repro.core.params import PAPER_COMPOSITION, PAPER_COSTS

BATCH_SIZES = (16, 256, 4096, 65536)
REPEATS = 5


def make_states(n: int, seed: int = 7) -> List[ComponentState]:
    """A realistic mixed population of component states."""
    rng = np.random.default_rng(seed)
    kind = rng.integers(0, 4, size=n)
    finite = rng.uniform(10.0, 5e5, size=n)
    # Quantize a third of the finite counts so the scalar cache sees
    # repeats, like back-to-back service under affinity does.
    repeat = rng.integers(0, 3, size=n) == 0
    finite = np.where(repeat, np.round(finite, -3), finite)
    states = []
    for i in range(n):
        if kind[i] == 0:
            code = stream = thread = 0.0
        elif kind[i] == 1:
            code = stream = thread = COLD
        elif kind[i] == 2:
            code = stream = thread = float(finite[i])
        else:
            code = float(finite[i])
            stream = float(finite[(i * 7 + 3) % n])
            thread = COLD if i % 5 == 0 else 0.0
        states.append(ComponentState(
            code_refs=code, stream_refs=stream, thread_refs=thread,
            shared_invalidated=(i % 11 == 0),
        ))
    return states


def time_best(fn, repeats: int = REPEATS) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def bench(n: int) -> dict:
    states = make_states(n)
    # Fresh models per path so cache warm-up is symmetric.
    scalar_model = ExecutionTimeModel(
        PAPER_COSTS, PAPER_COMPOSITION, sgi_challenge_hierarchy()
    )
    batch_model = ExecutionTimeModel(
        PAPER_COSTS, PAPER_COMPOSITION, sgi_challenge_hierarchy()
    )

    expected = np.array(
        [scalar_model.component_penalty_us(s) for s in states]
    )
    got = batch_model.component_penalty_us_batch(states)
    if not np.array_equal(expected, got):
        raise AssertionError(
            f"batch penalties diverge from scalar at n={n}"
        )

    # The array form the fused engine actually calls: columns are already
    # numpy, so the list->array conversion tax disappears.
    code = np.array([s.code_refs for s in states])
    stream = np.array([s.stream_refs for s in states])
    thread = np.array([s.thread_refs for s in states])
    shared = np.array([s.shared_invalidated for s in states])

    t_scalar = time_best(
        lambda: [scalar_model.component_penalty_us(s) for s in states]
    )
    t_batch = time_best(
        lambda: batch_model.component_penalty_us_batch(states)
    )
    t_array = time_best(
        lambda: batch_model.component_penalties_array(
            code, stream, thread, shared
        )
    )
    return {
        "n": n,
        "scalar_us_per_state": t_scalar / n * 1e6,
        "batch_us_per_state": t_batch / n * 1e6,
        "array_us_per_state": t_array / n * 1e6,
        "speedup_batch": t_scalar / t_batch,
        "speedup_array": t_scalar / t_array,
    }


def main() -> int:
    print(f"{'n':>8}  {'scalar us/st':>12}  {'batch us/st':>11}  "
          f"{'array us/st':>11}  {'batch':>7}  {'array':>7}")
    for n in BATCH_SIZES:
        row = bench(n)
        print(f"{row['n']:>8}  {row['scalar_us_per_state']:>12.3f}  "
              f"{row['batch_us_per_state']:>11.3f}  "
              f"{row['array_us_per_state']:>11.3f}  "
              f"{row['speedup_batch']:>6.1f}x  {row['speedup_array']:>6.1f}x")
    return 0


if __name__ == "__main__":
    sys.exit(main())
