"""Benchmark e02: Footprint function u(R; L) (eq. 2).

Regenerates the paper artifact end to end (fast-mode grid) and prints the
rows/series; run with ``--benchmark-only -s`` to see the table.
"""


def test_e02_footprint(experiment_bench):
    result = experiment_bench("e02")
    assert len(result.rows) >= 8
