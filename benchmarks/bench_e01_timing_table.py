"""Benchmark e01: Table 1: conditioned execution-time bounds.

Regenerates the paper artifact end to end (fast-mode grid) and prints the
rows/series; run with ``--benchmark-only -s`` to see the table.
"""


def test_e01_timing_table(experiment_bench):
    result = experiment_bench("e01")
    cold_row = next(r for r in result.rows if 'cold' in r['condition'])
    assert cold_row['anchored_us'] == 284.3
