"""Benchmark e06: Fig. 6: Locking delay vs rate, 8 streams.

Regenerates the paper artifact end to end (fast-mode grid) and prints the
rows/series; run with ``--benchmark-only -s`` to see the table.
"""


def test_e06_locking_few_streams(experiment_bench):
    result = experiment_bench("e06")
    assert result.rows
