"""Benchmarks for the extension experiments (x01 hybrid, x02 trains)."""


def test_x01_hybrid_scorecard(experiment_bench):
    result = experiment_bench("x01")
    by = result.meta["by_policy"]
    assert by["hybrid[17]"]["single_stream_pps"] > by[
        "locking-wired"]["single_stream_pps"]


def test_x02_packet_trains(experiment_bench):
    result = experiment_bench("x02")
    ips = [row["ips-wired"] for row in result.rows]
    assert ips[-1] > ips[0]


def test_x03_session_churn(experiment_bench):
    result = experiment_bench("x03")
    supported = result.meta["supported"]
    assert supported["ips-wired"] >= supported["fcfs(baseline)"]
