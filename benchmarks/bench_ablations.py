"""Benchmarks for the ablation studies (A01-A04).

Each regenerates one sensitivity table for a reconstructed parameter
(DESIGN.md §4); run with ``--benchmark-only -s`` to see the tables.
"""


def test_a01_lock_costs(experiment_bench):
    result = experiment_bench("a01")
    margins = result.meta["margins"]
    assert margins[-1] > margins[0]


def test_a02_shared_writable(experiment_bench):
    result = experiment_bench("a02")
    assert result.meta["locking_execs"][-1] > result.meta["locking_execs"][0]


def test_a03_composition(experiment_bench):
    result = experiment_bench("a03")
    assert result.meta["advantages"][-1] > result.meta["advantages"][0]


def test_a04_geometry(experiment_bench):
    result = experiment_bench("a04")
    assert len(result.rows) == 4


def test_a05_lock_granularity(experiment_bench):
    result = experiment_bench("a05")
    waits = result.meta["lock_waits"]
    assert waits[0] >= waits[-1]
