"""Benchmark e08: Figs. 8/9: IPS delay vs rate + stack-count extension.

Regenerates the paper artifact end to end (fast-mode grid) and prints the
rows/series; run with ``--benchmark-only -s`` to see the table.
"""


def test_e08_ips_delay(experiment_bench):
    result = experiment_bench("e08")
    assert result.rows
