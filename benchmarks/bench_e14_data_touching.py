"""Benchmark e14: Data-touching dilution of the affinity benefit.

Regenerates the paper artifact end to end (fast-mode grid) and prints the
rows/series; run with ``--benchmark-only -s`` to see the table.
"""


def test_e14_data_touching(experiment_bench):
    result = experiment_bench("e14")
    reds = [r['reduction_pct'] for r in result.rows if 'reduction_pct' in r]
    assert reds[0] > reds[-1]
