"""Benchmark e12: Intra-stream scalability vs processor count.

Regenerates the paper artifact end to end (fast-mode grid) and prints the
rows/series; run with ``--benchmark-only -s`` to see the table.
"""


def test_e12_scalability(experiment_bench):
    result = experiment_bench("e12")
    locking = [r['locking_capacity_pps'] for r in result.rows]
    ips = [r['ips_capacity_pps'] for r in result.rows]
    assert locking[-1] > 4 * locking[0]
    assert ips[-1] < 1.5 * ips[0]
