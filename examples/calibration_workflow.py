#!/usr/bin/env python
"""The paper's measurement methodology, end to end.

Section 4 of the paper derives the analytic model's parameters from
conditioned timing measurements.  This example replays that workflow on
the simulated platform:

1. define a protocol footprint layout;
2. measure packet execution time under conditioned cache states
   (fully warm / L1-displaced / fully cold);
3. isolate per-component affinity overheads;
4. calibrate a ProtocolCosts + FootprintComposition, anchored to the
   paper's one quoted absolute number (t_cold = 284.3 us);
5. run the same simulation with preset vs calibrated parameters and
   compare.

Run:  python examples/calibration_workflow.py
"""

from repro import PAPER_COSTS, SystemConfig, TrafficSpec, run_simulation
from repro.measurement import (
    CacheStateExperiment,
    FootprintLayout,
    calibrated_paper_costs,
)


def main() -> None:
    layout = FootprintLayout()  # ~12 KB protocol footprint
    experiment = CacheStateExperiment(layout)

    print("== step 1-2: conditioned measurements (simulated platform) ==")
    for condition, m in experiment.measure_all().items():
        print(f"  {condition:8s}: {m.time_us:7.1f} us   "
              f"(L1 misses {m.l1_misses:4d}, L2 misses {m.l2_misses:4d})")

    print("\n== step 3: component isolation ==")
    for component, overhead in experiment.component_breakdown().items():
        print(f"  only {component:13s} cold: +{overhead:5.1f} us")

    print("\n== step 4: calibration anchored to t_cold = 284.3 us ==")
    costs, composition = calibrated_paper_costs(layout)
    print(f"  calibrated bounds: warm={costs.t_warm_us:.1f} "
          f"l2={costs.t_l2_us:.1f} cold={costs.t_cold_us:.1f} us")
    print(f"  preset bounds    : warm={PAPER_COSTS.t_warm_us:.1f} "
          f"l2={PAPER_COSTS.t_l2_us:.1f} cold={PAPER_COSTS.t_cold_us:.1f} us")
    print(f"  calibrated composition: code={composition.code_global:.2f} "
          f"stream={composition.stream_state:.2f} "
          f"thread={composition.thread_stack:.2f}")
    print(f"  V=0 affinity bound: {costs.max_affinity_benefit:.1%} "
          "(paper band 40-50%)")

    print("\n== step 5: preset vs calibrated parameters in the simulator ==")
    traffic = TrafficSpec.homogeneous_poisson(8, 16_000)
    for label, kwargs in (
        ("paper presets", {}),
        ("calibrated", {"costs": costs, "composition": composition}),
    ):
        cfg = SystemConfig(
            traffic=traffic, policy="mru",
            duration_us=600_000, warmup_us=100_000, seed=4, **kwargs,
        )
        s = run_simulation(cfg)
        print(f"  {label:14s}: mean delay {s.mean_delay_us:7.1f} us, "
              f"service {s.mean_exec_us:6.1f} us")
    print("  -> conclusions are insensitive to preset-vs-measured inputs.")


if __name__ == "__main__":
    main()
