#!/usr/bin/env python
"""RPC latency under scheduling policies — the intro's motivating workload.

The paper's introduction motivates low protocol latency with "parallel
applications requiring low-latency communication, such as those performing
multiprocessor IPC or RPC in a distributed environment."  This example
puts an RPC-shaped workload on the reproduction:

1. **wire level** — a request/reply round trip through two x-kernel
   stacks (client send path -> server receive path, and back), verifying
   byte-exact delivery with checksums;
2. **host level** — the simulator estimates how much protocol-processing
   delay an RPC pays at each arrival rate under each scheduling policy:
   one round trip costs one receive-side processing delay at the server
   plus one at the client, so RPC latency ~ 2 x mean packet delay
   (+ network, which is off-host and constant).

Run:  python examples/rpc_latency.py
"""

from repro import SystemConfig, TrafficSpec, run_simulation
from repro.xkernel import ReceiveFastPath, SendPath, StreamEndpoint, loopback

CLIENT_MAC = bytes([2, 0, 0, 0, 0, 1])
SERVER_MAC = bytes([2, 0, 0, 0, 0, 2])
CLIENT_IP, SERVER_IP = "10.0.1.1", "10.0.1.2"


def wire_level_round_trip() -> None:
    print("== wire level: one RPC through two stacks ==")
    # Server receives requests on port 9000; client receives replies on 9001.
    server_rx = ReceiveFastPath.build(
        [StreamEndpoint(CLIENT_IP, 9001, 9000)],
        local_mac=SERVER_MAC, local_ip=SERVER_IP, verify_udp_checksum=True,
    )
    client_rx = ReceiveFastPath.build(
        [StreamEndpoint(SERVER_IP, 9000, 9001)],
        local_mac=CLIENT_MAC, local_ip=CLIENT_IP, verify_udp_checksum=True,
    )
    client_tx = SendPath(CLIENT_MAC, CLIENT_IP, remote_mac=SERVER_MAC)
    server_tx = SendPath(SERVER_MAC, SERVER_IP, remote_mac=CLIENT_MAC)
    call = client_tx.open_session(9001, SERVER_IP, 9000)
    reply = server_tx.open_session(9000, CLIENT_IP, 9001)

    # Capture the request payload at the server and echo it back.
    echoed = []
    server_rx.udp.session(9000).callback = lambda data: echoed.append(data)

    client_tx.send(call, b"GETATTR /export/home")
    loopback(client_tx, server_rx)
    request = echoed[-1][4:]  # strip the sequence stamp
    print(f"  server received request: {request!r}")

    server_tx.send(reply, b"OK " + request)
    got = []
    client_rx.udp.session(9001).callback = lambda data: got.append(data)
    loopback(server_tx, client_rx)
    print(f"  client received reply  : {got[-1][4:]!r}")
    assert got[-1][4:] == b"OK " + request


def host_level_latency() -> None:
    print("\n== host level: protocol-processing share of RPC latency ==")
    print("  (RPC latency ~ 2 x mean packet delay on an 8-CPU host that is")
    print("   also carrying background streams)")
    policies = {
        "locking/fcfs (no affinity)": ("locking", "fcfs"),
        "locking/stream-mru": ("locking", "stream-mru"),
        "ips/wired": ("ips", "ips-wired"),
    }
    header = f"  {'host load':>12} | " + " | ".join(f"{p:>26}" for p in policies)
    print(header)
    print("  " + "-" * (len(header) - 2))
    for rate in (4_000, 16_000, 32_000):
        cells = []
        for label, (paradigm, policy) in policies.items():
            cfg = SystemConfig(
                traffic=TrafficSpec.homogeneous_poisson(8, rate),
                paradigm=paradigm, policy=policy,
                duration_us=600_000, warmup_us=100_000, seed=9,
            )
            s = run_simulation(cfg)
            rtt_us = 2.0 * s.mean_delay_us
            cells.append(f"{rtt_us:>23.0f} us" if s.stable else f"{'saturated':>26}")
        print(f"  {rate:>9} pps | " + " | ".join(cells))
    print("  -> affinity scheduling shaves ~10-20% off every RPC at low load")
    print("     and keeps RPCs fast at loads where the baseline collapses.")


if __name__ == "__main__":
    wire_level_round_trip()
    host_level_latency()
