#!/usr/bin/env python
"""Affinity-policy study: when does each scheduling policy win, and why?

Walks through the paper's policy conclusions with the analytic model as
the explanatory tool:

- the flush curves F1(x)/F2(x) set the timescales on which affinity decays;
- at low arrival rate, MRU concentration keeps one processor's cache warm
  against the displacing non-protocol workload;
- at high arrival rate, cross-processor stream-state migration dominates
  and Wired-Streams wins;
- the non-protocol intensity V scales the whole effect (V=0 bounds it).

Run:  python examples/affinity_policy_study.py
"""

import numpy as np

from repro import (
    ExecutionTimeModel,
    PAPER_COMPOSITION,
    PAPER_COSTS,
    SystemConfig,
    TrafficSpec,
    run_simulation,
    sgi_challenge_hierarchy,
)


def explain_timescales() -> None:
    print("=" * 68)
    print("Cache-affinity timescales (analytic model)")
    print("=" * 68)
    h = sgi_challenge_hierarchy()
    model = ExecutionTimeModel(PAPER_COSTS, PAPER_COMPOSITION, h)
    print(f"  warm execution : {PAPER_COSTS.t_warm_us:6.1f} us")
    print(f"  cold execution : {PAPER_COSTS.t_cold_us:6.1f} us "
          f"(quoted by the paper)")
    print(f"  L1 half-flushed after {h.time_to_flush(0, 0.5):8.0f} us of "
          "intervening work")
    print(f"  L2 half-flushed after {h.time_to_flush(1, 0.5):8.0f} us "
          "(the paper: 'much more slowly')")
    for x in (100.0, 1_000.0, 10_000.0):
        t = model.execution_time_after_idle(x)
        print(f"  t(x={x:>7.0f} us) = {t:6.1f} us")
    print()


def policy_sweep() -> None:
    print("=" * 68)
    print("Policy ranking flips with arrival rate (Locking, 8 streams)")
    print("=" * 68)
    policies = ("fcfs", "mru", "wired-streams")
    header = f"  {'rate':>8} | " + " | ".join(f"{p:>14}" for p in policies)
    print(header)
    print("  " + "-" * (len(header) - 2))
    for rate in (2_000, 16_000, 32_000, 40_000):
        cells = []
        for policy in policies:
            cfg = SystemConfig(
                traffic=TrafficSpec.homogeneous_poisson(8, rate),
                policy=policy,
                duration_us=600_000, warmup_us=100_000, seed=5,
            )
            s = run_simulation(cfg)
            cells.append(
                f"{s.mean_delay_us:>12.1f}us" if s.stable else f"{'saturated':>14}"
            )
        print(f"  {rate:>8} | " + " | ".join(cells))
    print("  -> MRU wins at low/mid rates; Wired-Streams survives highest.")
    print()


def intensity_sensitivity() -> None:
    print("=" * 68)
    print("Non-protocol intensity V scales the affinity benefit")
    print("=" * 68)
    for v in (0.0, 0.5, 1.0):
        base = SystemConfig(
            traffic=TrafficSpec.homogeneous_poisson(8, 8_000),
            nonprotocol_intensity=v,
            duration_us=600_000, warmup_us=100_000, seed=5,
        )
        fcfs = run_simulation(base.with_(policy="fcfs"))
        mru = run_simulation(base.with_(policy="stream-mru"))
        reduction = 1.0 - mru.mean_delay_us / fcfs.mean_delay_us
        print(f"  V={v:>4}: baseline={fcfs.mean_delay_us:7.1f}us  "
              f"affinity={mru.mean_delay_us:7.1f}us  "
              f"reduction={reduction:6.1%}")
    print("  -> V=0 is the upper envelope (the paper's 'V=0 curves').")


if __name__ == "__main__":
    explain_timescales()
    policy_sweep()
    intensity_sensitivity()
