#!/usr/bin/env python
"""Locking vs Independent Protocol Stacks: the paper's central trade-off.

Reproduces, at example scale, the abstract's three claims:

1. IPS delivers lower message latency and higher maximum throughput.
2. IPS is less robust to intra-stream burstiness (a burst serializes
   behind its one stack; Locking recruits every processor).
3. IPS has limited intra-stream scalability (a single stream cannot
   exceed one stack's serial rate).

Run:  python examples/locking_vs_ips.py
"""

from repro import PlatformConfig, SystemConfig, TrafficSpec, run_simulation
from repro.experiments.base import find_capacity


def latency_and_capacity() -> None:
    print("=" * 64)
    print("1. Latency and aggregate capacity (16 streams)")
    print("=" * 64)
    contenders = {
        "locking/mru": ("locking", "mru"),
        "ips/wired": ("ips", "ips-wired"),
    }
    for rate in (8_000, 24_000, 40_000):
        line = [f"  {rate:>6} pps:"]
        for label, (paradigm, policy) in contenders.items():
            cfg = SystemConfig(
                traffic=TrafficSpec.homogeneous_poisson(16, rate),
                paradigm=paradigm, policy=policy,
                duration_us=600_000, warmup_us=100_000, seed=3,
            )
            s = run_simulation(cfg)
            delay = f"{s.mean_delay_us:8.1f}us" if s.stable else "  saturated"
            line.append(f"{label}={delay}")
        print("  ".join(line))

    for label, (paradigm, policy) in contenders.items():
        cap = find_capacity(
            lambda r, paradigm=paradigm, policy=policy: SystemConfig(
                traffic=TrafficSpec.homogeneous_poisson(16, r),
                paradigm=paradigm, policy=policy,
                duration_us=300_000, warmup_us=50_000, seed=3,
            ),
            low_pps=5_000, high_pps=80_000, iterations=7,
        )
        print(f"  max sustainable rate, {label}: {cap:,.0f} pps")


def burstiness() -> None:
    print()
    print("=" * 64)
    print("2. Robustness to intra-stream burstiness (constant load)")
    print("=" * 64)
    for burst in (1, 8, 24):
        traffic = TrafficSpec.one_bursty_among_smooth(
            n_streams=8, total_rate_pps=16_000, mean_batch=float(burst)
        )
        line = [f"  burst={burst:>2}:"]
        for label, paradigm, policy in (
            ("locking/mru", "locking", "mru"),
            ("ips/wired", "ips", "ips-wired"),
        ):
            cfg = SystemConfig(
                traffic=traffic, paradigm=paradigm, policy=policy,
                duration_us=600_000, warmup_us=100_000, seed=3,
            )
            s = run_simulation(cfg)
            line.append(
                f"{label} bursty-stream delay={s.per_stream_mean_delay_us[0]:8.1f}us"
            )
        print("  ".join(line))
    print("  -> IPS's bursty stream degrades much faster (serial stack).")


def scalability() -> None:
    print()
    print("=" * 64)
    print("3. Intra-stream scalability (one stream, N CPUs)")
    print("=" * 64)
    for n in (1, 4, 8):
        line = [f"  N={n}:"]
        for label, paradigm, policy in (
            ("locking", "locking", "mru"),
            ("ips", "ips", "ips-wired"),
        ):
            cap = find_capacity(
                lambda r, paradigm=paradigm, policy=policy, n=n: SystemConfig(
                    traffic=TrafficSpec.single_stream(r),
                    paradigm=paradigm, policy=policy,
                    platform=PlatformConfig(n_processors=n),
                    duration_us=300_000, warmup_us=50_000, seed=3,
                ),
                low_pps=1_000, high_pps=60_000, iterations=7,
            )
            line.append(f"{label} max={cap:>8,.0f} pps")
        print("  ".join(line))
    print("  -> Locking scales the single stream with N; IPS stays flat.")


if __name__ == "__main__":
    latency_and_capacity()
    burstiness()
    scalability()
