#!/usr/bin/env python
"""Capacity planning with the analysis toolkit (no long simulations).

A downstream engineer's workflow: size a protocol-processing host for a
target workload using the closed-form predictor, then verify the chosen
operating point with a few paired simulation replications.

1. **Predict** mean delay across policies/rates with
   :class:`repro.analysis.AnalyticPredictor` (milliseconds of CPU, not
   simulation minutes).
2. **Pick** the paradigm for the requirement (e.g. p? delay budget at a
   projected load, plus a burst-robustness constraint).
3. **Verify** the decision with paired replications under common random
   numbers — a statistically defensible A/B with 5 short runs.

Run:  python examples/capacity_planning.py
"""

from repro import SystemConfig, TrafficSpec
from repro.analysis.predictor import AnalyticPredictor
from repro.analysis.replications import paired_comparison

TARGET_RATE_PPS = 24_000.0
N_STREAMS = 16
DELAY_BUDGET_US = 320.0


def predict() -> None:
    print("=" * 66)
    print(f"1. Closed-form predictions at {TARGET_RATE_PPS:,.0f} pps, "
          f"{N_STREAMS} streams")
    print("=" * 66)
    predictor = AnalyticPredictor()
    print(f"  {'policy':<15} {'service':>9} {'delay':>9} {'util':>6} "
          f"{'meets budget?':>14}")
    for policy in predictor.SUPPORTED:
        p = predictor.predict(policy, TARGET_RATE_PPS, N_STREAMS)
        verdict = "yes" if p.stable and p.mean_delay_us <= DELAY_BUDGET_US else "no"
        print(f"  {policy:<15} {p.service_us:>7.1f}us {p.mean_delay_us:>7.1f}us "
              f"{p.utilization:>6.2f} {verdict:>14}")
    for policy in ("fcfs", "wired-streams", "ips-wired"):
        cap = predictor.capacity_pps(policy, N_STREAMS)
        print(f"  predicted capacity, {policy:<15}: {cap:>9,.0f} pps")


def verify() -> None:
    print()
    print("=" * 66)
    print("2. Verify the shortlist with paired replications (common RNs)")
    print("=" * 66)
    make = lambda paradigm, policy: SystemConfig(
        traffic=TrafficSpec.homogeneous_poisson(N_STREAMS, TARGET_RATE_PPS),
        paradigm=paradigm, policy=policy,
        duration_us=400_000, warmup_us=60_000,
    )
    cmp = paired_comparison(
        make("locking", "mru"),
        make("ips", "ips-wired"),
        n_replications=5,
    )
    a, b = cmp.a, cmp.b
    print(f"  locking/mru : {a.mean_delay_us:7.1f} us "
          f"(95% CI ±{a.half_width_us:.1f})")
    print(f"  ips/wired   : {b.mean_delay_us:7.1f} us "
          f"(95% CI ±{b.half_width_us:.1f})")
    print(f"  paired diff : {cmp.mean_difference_us:+7.1f} us "
          f"[{cmp.ci_us[0]:+.1f}, {cmp.ci_us[1]:+.1f}] "
          f"-> {'significant' if cmp.significant else 'not significant'}")
    print("\n  Decision input: at this mid-range load, Locking/MRU's pooled")
    print("  queue wins on latency while IPS carries ~30% more capacity")
    print("  headroom for growth; check x01/x02 (burstiness) before wiring")
    print("  hot streams to single stacks — the hybrid policy hedges both.")


if __name__ == "__main__":
    predict()
    verify()
