#!/usr/bin/env python
"""Drive the x-kernel UDP/IP/FDDI receive fast path packet by packet.

Shows the protocol substrate the study instruments: builds the stack, has
the in-memory FDDI driver synthesize real frames, runs them up through
demultiplexing, exercises the drop paths, demonstrates IPS replication
(independent stacks cannot see each other's streams), and wall-clock
times the Python implementation.

Run:  python examples/xkernel_fastpath.py
"""

from repro.measurement.timing import time_fast_path
from repro.xkernel import (
    ChecksumError,
    DemuxError,
    ReceiveFastPath,
    StreamEndpoint,
    build_ips_stacks,
)


def main() -> None:
    streams = [
        StreamEndpoint(src_ip=f"10.0.0.{i + 1}", src_port=5000 + i,
                       dst_port=7000 + i)
        for i in range(4)
    ]

    print("== shared stack (Locking configuration) ==")
    fp = ReceiveFastPath.build(streams, verify_udp_checksum=True)
    fp.deliver_many(400, payload_bytes=256)
    for i in range(4):
        s = fp.session_for_stream(i)
        print(f"  stream {i}: {s.packets_received} packets, "
              f"{s.bytes_received} bytes, out-of-order={s.out_of_order}")
    for name, stats in fp.graph.stats_by_layer().items():
        print(f"  layer {name:4s}: delivered={stats.delivered} "
              f"dropped={stats.dropped}")

    print("\n== drop paths ==")
    corrupted = bytearray(fp.driver.next_frame(0, 64))
    corrupted[-1] ^= 0xFF  # payload bit flip -> UDP checksum failure
    try:
        fp.graph.receive(bytes(corrupted))
    except ChecksumError as e:
        print(f"  corrupted payload rejected: {e}")
    from repro.xkernel import InMemoryFDDIDriver
    other_host = InMemoryFDDIDriver(fp.driver.local_mac, "10.9.9.9", streams)
    try:
        fp.graph.receive(other_host.next_frame(0, 64))
    except DemuxError as e:
        print(f"  mis-addressed datagram rejected: {e}")

    print("\n== IPS: independent protocol stacks ==")
    stacks = build_ips_stacks(streams, n_stacks=2)
    for k, stack in enumerate(stacks):
        names = [ep.dst_port for ep in stack.driver.streams]
        print(f"  stack {k} owns ports {names}")
    # A frame for stack 1's stream is a demux error at stack 0 — total
    # isolation, which is what lets IPS run without locks.
    frame = stacks[1].driver.next_frame(0)
    try:
        stacks[0].graph.receive(frame)
    except DemuxError:
        print("  stack 0 cannot demux stack 1's stream (isolation verified)")

    print("\n== wall-clock timing of the Python fast path ==")
    for payload in (64, 1024, 4432):
        r = time_fast_path(n_streams=4, n_iterations=400,
                           payload_bytes=payload)
        print(f"  payload {payload:>5} B: median {r.p50_us:7.1f} us/packet "
              f"({1e6 / r.p50_us:,.0f} pps single-threaded)")


if __name__ == "__main__":
    main()
