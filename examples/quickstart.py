#!/usr/bin/env python
"""Quickstart: simulate parallel protocol processing in ~20 lines.

Configures the paper's platform (8-CPU SGI Challenge class machine), runs
the Locking paradigm under two scheduling policies on identical traffic,
and prints the affinity benefit.

Run:  python examples/quickstart.py
"""

from repro import SystemConfig, TrafficSpec, run_simulation


def main() -> None:
    # 8 Poisson streams offering 12,000 packets/s in aggregate, processed
    # concurrently with a displacing non-protocol workload (V = 1).
    traffic = TrafficSpec.homogeneous_poisson(n_streams=8, total_rate_pps=12_000)

    base = SystemConfig(
        traffic=traffic,
        paradigm="locking",
        duration_us=1_000_000,   # 1 s simulated
        warmup_us=150_000,
        seed=1,
    )

    print(f"{'policy':<16} {'mean delay':>12} {'service':>10} {'p95':>10}")
    for policy in ("fcfs", "mru", "stream-mru", "wired-streams"):
        summary = run_simulation(base.with_(policy=policy))
        print(
            f"{policy:<16} {summary.mean_delay_us:>10.1f}us "
            f"{summary.mean_exec_us:>8.1f}us {summary.p95_delay_us:>8.1f}us"
        )

    baseline = run_simulation(base.with_(policy="fcfs"))
    best = run_simulation(base.with_(policy="stream-mru"))
    reduction = 1.0 - best.mean_delay_us / baseline.mean_delay_us
    print(
        f"\naffinity scheduling cut mean packet delay by {reduction:.1%} "
        "at this load (paper: significant reductions, V=0 bound 40-50%)"
    )


if __name__ == "__main__":
    main()
